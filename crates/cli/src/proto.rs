//! The wire protocol `polap --connect` and `olap-server` share
//! (DESIGN.md §13). It lives in the cli crate so the shell's client
//! mode and the server can use one implementation without a package
//! cycle (the server depends on the cli for [`crate::Session`]).
//!
//! Requests are UTF-8 text in a length-prefixed frame: a big-endian
//! `u32` byte count, then the payload. Responses are a frame whose
//! payload starts with one status byte ([`STATUS_OK`], [`STATUS_ERR`],
//! [`STATUS_QUIT`]); on connect the server pushes one greeting frame
//! before any request (`+` admitted, `-` refused by admission control).
//! The greeting banner is versioned — `polap/1 <text>` — so a
//! mismatched client/server pair fails with a readable error instead of
//! misparsing each other's frames.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Frames larger than this are refused — a corrupt length prefix must
/// not make either end allocate gigabytes.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Payload bytes are read (and memory committed) in steps of this size,
/// so a garbage length prefix costs at most one step of allocation, not
/// [`MAX_FRAME`] per connection.
const READ_CHUNK: usize = 64 * 1024;

/// Greeting magic: the protocol family name in the banner's
/// `magic/version` prefix.
pub const PROTO_MAGIC: &str = "polap";
/// Protocol version this build speaks. Bump on any frame-layout change;
/// [`Client::connect`] refuses a server that speaks another version.
pub const PROTO_VERSION: u8 = 1;

/// Response status: request handled, text follows.
pub const STATUS_OK: u8 = b'+';
/// Response status: server-level error. The connection closes for
/// admission refusal, malformed frames and handler panics, but stays
/// open for a request-deadline abort (the session is still healthy).
pub const STATUS_ERR: u8 = b'-';
/// Response status: quit acknowledged; the connection is closing.
pub const STATUS_QUIT: u8 = b'Q';

/// The versioned greeting banner a server sends on admit:
/// `polap/1 <text>`.
pub fn greeting_banner(text: &str) -> String {
    format!("{PROTO_MAGIC}/{PROTO_VERSION} {text}")
}

/// Validates a greeting banner against this build's magic + version.
/// Returns the human text after the version prefix.
pub fn parse_greeting(banner: &str) -> io::Result<&str> {
    let Some(rest) = banner.strip_prefix(PROTO_MAGIC) else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("server did not present a {PROTO_MAGIC}/<version> greeting (old server?)"),
        ));
    };
    let Some(rest) = rest.strip_prefix('/') else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "malformed greeting: missing protocol version",
        ));
    };
    let (ver, text) = rest.split_once(' ').unwrap_or((rest, ""));
    match ver.parse::<u8>() {
        Ok(v) if v == PROTO_VERSION => Ok(text),
        Ok(v) => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "protocol version mismatch: server speaks {PROTO_MAGIC}/{v}, \
                 this client speaks {PROTO_MAGIC}/{PROTO_VERSION}"
            ),
        )),
        Err(_) => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "malformed greeting: non-numeric protocol version",
        )),
    }
}

/// Writes one response frame: `status` byte, then `text`.
pub fn write_frame(w: &mut impl Write, status: u8, text: &str) -> io::Result<()> {
    let len = u32::try_from(1 + text.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(&[status])?;
    w.write_all(text.as_bytes())?;
    w.flush()
}

/// Writes one request frame (no status byte — requests are bare text).
pub fn write_request(w: &mut impl Write, line: &str) -> io::Result<()> {
    let len = u32::try_from(line.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(line.as_bytes())?;
    w.flush()
}

fn read_payload(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    // A clean EOF at a frame boundary ends the conversation.
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    // Grow in bounded steps as real payload bytes arrive: the length
    // prefix is untrusted, and committing `len` bytes up front would let
    // a garbage header on N connections pin N × MAX_FRAME of memory
    // without ever sending a payload.
    let mut buf = Vec::with_capacity(len.min(READ_CHUNK));
    while buf.len() < len {
        let step = (len - buf.len()).min(READ_CHUNK);
        let old = buf.len();
        buf.resize(old + step, 0);
        r.read_exact(&mut buf[old..])?;
    }
    Ok(Some(buf))
}

/// Reads one request frame; `None` on clean end-of-stream.
pub fn read_request(r: &mut impl Read) -> io::Result<Option<String>> {
    match read_payload(r)? {
        None => Ok(None),
        Some(buf) => String::from_utf8(buf)
            .map(Some)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e)),
    }
}

/// Reads one response frame as `(status, text)`; `None` on clean
/// end-of-stream.
pub fn read_response(r: &mut impl Read) -> io::Result<Option<(u8, String)>> {
    match read_payload(r)? {
        None => Ok(None),
        Some(buf) => {
            let (&status, text) = buf
                .split_first()
                .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty response"))?;
            let text = String::from_utf8(text.to_vec())
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            Ok(Some((status, text)))
        }
    }
}

/// Bounded-retry policy for [`Client::request`]: on an I/O failure the
/// client backs off exponentially (with deterministic jitter from
/// `seed`), reconnects, replays its session journal into the fresh
/// server session, and re-issues the failed request.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Reconnect attempts per failed request; 0 disables retry (the
    /// default — a bare `Client::connect` behaves exactly as before).
    pub attempts: u32,
    /// First backoff delay; doubles per attempt up to `max`.
    pub base: Duration,
    /// Backoff ceiling.
    pub max: Duration,
    /// Jitter seed (xorshift), so concurrent clients don't reconnect in
    /// lockstep while tests stay reproducible.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 0,
            base: Duration::from_millis(10),
            max: Duration::from_millis(500),
            seed: 1,
        }
    }
}

impl RetryPolicy {
    /// A sensible retrying policy: `attempts` reconnects, 10 ms base
    /// backoff doubling to a 500 ms cap, jitter seeded per client.
    pub fn retries(attempts: u32, seed: u64) -> RetryPolicy {
        RetryPolicy {
            attempts,
            seed: seed | 1,
            ..RetryPolicy::default()
        }
    }
}

/// Verbs whose *acknowledged* execution changes server-session state
/// and must therefore be replayed into a fresh session after a
/// reconnect: tuning (`.budget`, `.deadline`), the scenario forest
/// (`.fork`, `.switch`, `.change`), and an argful `.apply` (it records
/// the fork's negative scenario). Bare `.apply` and plain queries are
/// read-only.
fn is_stateful(line: &str) -> bool {
    let line = line.trim();
    let Some(rest) = line.strip_prefix('.') else {
        return false;
    };
    let mut parts = rest.splitn(2, ' ');
    let head = parts.next().unwrap_or("").to_ascii_lowercase();
    let arg = parts.next().unwrap_or("").trim();
    match head.as_str() {
        "budget" | "deadline" | "fork" | "switch" | "change" => !arg.is_empty(),
        "apply" => !arg.is_empty(),
        _ => false,
    }
}

/// A blocking client: one request, one response. With a
/// [`RetryPolicy`], a failed request transparently reconnects (bounded
/// attempts, exponential backoff + jitter) and replays the session
/// journal — every acknowledged state-setting verb — before re-issuing
/// the failed request. Re-issuing is safe even for non-idempotent verbs
/// like `.fork`: a reconnect always lands in a *fresh* server session,
/// and the journal holds only acknowledged requests, so the replayed
/// session has never seen the failed one. `.apply` replies are
/// deterministic digests, so a replayed answer is byte-identical to the
/// lost one.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    /// Resolved server addresses, kept for reconnects.
    addrs: Vec<SocketAddr>,
    retry: RetryPolicy,
    /// Acknowledged state-setting requests, in issue order.
    journal: Vec<String>,
    /// xorshift state for backoff jitter.
    jitter: u64,
}

impl Client {
    /// Connects and reads the greeting frame. Admission refusal comes
    /// back as a `ConnectionRefused` error carrying the server's text;
    /// a greeting with the wrong magic or protocol version is an
    /// `InvalidData` error naming both versions.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        let stream = Self::open(&addrs)?;
        Ok(Client {
            stream,
            addrs,
            retry: RetryPolicy::default(),
            journal: Vec::new(),
            jitter: 0x9e3779b97f4a7c15,
        })
    }

    /// Like [`Client::connect`] with a retry policy from the start.
    pub fn connect_with(addr: impl ToSocketAddrs, retry: RetryPolicy) -> io::Result<Client> {
        let mut c = Client::connect(addr)?;
        c.jitter = retry.seed | 1;
        c.retry = retry;
        Ok(c)
    }

    /// Sets the retry policy on an existing client.
    pub fn set_retry(&mut self, retry: RetryPolicy) {
        self.jitter = retry.seed | 1;
        self.retry = retry;
    }

    /// One TCP connect + greeting handshake.
    fn open(addrs: &[SocketAddr]) -> io::Result<TcpStream> {
        let mut stream = TcpStream::connect(addrs)?;
        match read_response(&mut stream)? {
            Some((STATUS_OK, banner)) => {
                parse_greeting(&banner)?;
                Ok(stream)
            }
            Some((_, text)) => Err(io::Error::new(io::ErrorKind::ConnectionRefused, text)),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before greeting",
            )),
        }
    }

    /// Sends one line and waits for its `(status, text)` response.
    /// Server-closed-without-reply surfaces as `UnexpectedEof` — unless
    /// the retry policy allows reconnecting, in which case the journal
    /// is replayed and the request re-issued before giving up.
    pub fn request(&mut self, line: &str) -> io::Result<(u8, String)> {
        let first = self.send_once(line);
        let mut last_err = match first {
            Ok(resp) => return Ok(self.journal_ack(line, resp)),
            Err(e) => e,
        };
        for attempt in 0..self.retry.attempts {
            std::thread::sleep(self.backoff(attempt));
            match self.reconnect_and_replay() {
                Ok(()) => {}
                Err(e) => {
                    last_err = e;
                    continue;
                }
            }
            match self.send_once(line) {
                Ok(resp) => return Ok(self.journal_ack(line, resp)),
                Err(e) => last_err = e,
            }
        }
        Err(last_err)
    }

    /// The session journal replayed on reconnect (for tests).
    pub fn journal(&self) -> &[String] {
        &self.journal
    }

    fn send_once(&mut self, line: &str) -> io::Result<(u8, String)> {
        write_request(&mut self.stream, line)?;
        read_response(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })
    }

    /// Records an acknowledged state-setting verb, then passes the
    /// response through.
    fn journal_ack(&mut self, line: &str, resp: (u8, String)) -> (u8, String) {
        if resp.0 == STATUS_OK && is_stateful(line) {
            self.journal.push(line.to_string());
        }
        resp
    }

    /// Opens a fresh connection and replays the journal into the new
    /// (blank) server session. Any replay failure fails the whole
    /// attempt — a half-restored session must not serve requests.
    fn reconnect_and_replay(&mut self) -> io::Result<()> {
        let mut stream = Self::open(&self.addrs)?;
        for line in &self.journal {
            write_request(&mut stream, line)?;
            match read_response(&mut stream)? {
                Some((STATUS_OK, _)) => {}
                Some((_, text)) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("journal replay of {line:?} failed: {text}"),
                    ));
                }
                None => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection during journal replay",
                    ));
                }
            }
        }
        self.stream = stream;
        Ok(())
    }

    /// Exponential backoff with ±50% deterministic jitter.
    fn backoff(&mut self, attempt: u32) -> Duration {
        let exp = self
            .retry
            .base
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.retry.max);
        jittered(exp, &mut self.jitter)
    }
}

/// Scales `exp` into [50%, 150%] with an xorshift64 step of `state` —
/// deterministic per seed, decorrelated across clients.
fn jittered(exp: Duration, state: &mut u64) -> Duration {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    let pct = 50 + (*state % 101);
    exp.mul_f64(pct as f64 / 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_request(&mut buf, ".schema").unwrap();
        write_frame(&mut buf, STATUS_OK, "fine").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_request(&mut r).unwrap().as_deref(), Some(".schema"));
        assert_eq!(
            read_response(&mut r).unwrap(),
            Some((STATUS_OK, "fine".to_string()))
        );
        assert_eq!(read_response(&mut r).unwrap(), None);
    }

    #[test]
    fn oversized_frames_are_refused() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME as u32 + 1).to_be_bytes());
        let mut r = &buf[..];
        assert!(read_request(&mut r).is_err());
    }

    #[test]
    fn large_frames_round_trip_through_chunked_reads() {
        let line = "x".repeat(READ_CHUNK * 3 + 7);
        let mut buf = Vec::new();
        write_request(&mut buf, &line).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_request(&mut r).unwrap().as_deref(), Some(&line[..]));
    }

    #[test]
    fn garbage_header_does_not_commit_the_whole_frame() {
        // A maximal length prefix with no payload: the incremental
        // reader must fail with EOF after at most one chunk step, not
        // allocate MAX_FRAME first. (The capacity bound is the
        // observable part; the error proves we tried to read, not to
        // pre-commit.)
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME as u32).to_be_bytes());
        let mut r = &buf[..];
        let err = read_request(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn greeting_version_is_enforced() {
        assert_eq!(
            parse_greeting(&greeting_banner("olap-server ready")).unwrap(),
            "olap-server ready"
        );
        let wrong = format!("{PROTO_MAGIC}/{} hi", PROTO_VERSION + 1);
        let err = parse_greeting(&wrong).unwrap_err();
        assert!(err.to_string().contains("version mismatch"), "{err}");
        let old = parse_greeting("olap-server ready").unwrap_err();
        assert!(old.to_string().contains("greeting"), "{old}");
    }

    #[test]
    fn stateful_verbs_feed_the_journal() {
        assert!(is_stateful(".budget 100"));
        assert!(is_stateful(".deadline 50"));
        assert!(is_stateful(".fork a"));
        assert!(is_stateful(".switch a"));
        assert!(is_stateful(".change FTE Contractor 3"));
        assert!(is_stateful(".apply static 2,3"));
        assert!(!is_stateful(".apply")); // re-run only, no state change
        assert!(!is_stateful(".budget")); // query, not a set
        assert!(!is_stateful(".schema"));
        assert!(!is_stateful("SELECT x ON COLUMNS FROM c"));
    }

    #[test]
    fn backoff_jitter_is_bounded_and_deterministic() {
        let exp = Duration::from_millis(100);
        let mut a = 42u64;
        let mut b = 42u64;
        for _ in 0..32 {
            let d = jittered(exp, &mut a);
            assert!(d >= Duration::from_millis(50) && d <= Duration::from_millis(150));
            assert_eq!(d, jittered(exp, &mut b)); // same seed, same schedule
        }
    }
}
