//! The `polap` shell: an interactive session over one of the bundled
//! datasets, accepting extended MDX plus dot-commands. The session logic
//! lives here (testable without a terminal); `main.rs` is a thin stdin
//! loop.

pub mod proto;

use olap_mdx::{parse, QueryContext};
use olap_model::{DimensionId, MemberId};
use olap_workload::{retail_example, running_example, Workforce, WorkforceConfig};
use std::fmt::{self, Write as _};
use std::sync::Arc;
use whatif_core::ScenarioForest;

/// Which bundled dataset a session runs against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dataset {
    /// The paper's Fig. 1/2 running example.
    Running,
    /// The Fig. 7 retail catalog with margin rules.
    Retail,
    /// The Section 6 workforce-planning workload (1/10th scale).
    Workforce,
    /// A small workforce (the `--replay` configuration) sized so dozens
    /// of concurrent server sessions stay fast; used by `--serve-bench`.
    Bench,
}

impl Dataset {
    /// Parses a dataset name.
    pub fn parse(s: &str) -> Option<Dataset> {
        match s.to_ascii_lowercase().as_str() {
            "running" | "example" => Some(Dataset::Running),
            "retail" => Some(Dataset::Retail),
            "workforce" => Some(Dataset::Workforce),
            "bench" => Some(Dataset::Bench),
            _ => None,
        }
    }
}

enum Loaded {
    Running(olap_workload::RunningExample),
    Retail(olap_workload::Retail),
    Workforce(Box<Workforce>),
}

impl Loaded {
    fn cube(&self) -> &olap_cube::Cube {
        match self {
            Loaded::Running(e) => &e.cube,
            Loaded::Retail(r) => &r.cube,
            Loaded::Workforce(w) => &w.cube,
        }
    }

    fn named_sets(&self) -> Vec<(String, DimensionId, Vec<MemberId>)> {
        match self {
            Loaded::Workforce(w) => w
                .named_sets()
                .into_iter()
                .map(|(n, m)| (n, w.department, m))
                .collect(),
            _ => Vec::new(),
        }
    }
}

/// The shareable half of a session: the loaded dataset (whose cube owns
/// the buffer pool) and the optional scenario-delta cache. One instance
/// backs one in-process REPL — or, behind `olap-server`, *every*
/// concurrent analyst session: sessions share the pool and the cache
/// but own their private tuning/budget state ([`Session`]). Sound
/// because sessions never mutate the base cube.
pub struct SharedData {
    data: Loaded,
    cache: Option<Arc<whatif_core::ScenarioCache>>,
    /// Memoized positive/split results, shared across sessions like the
    /// scenario cache. Always on — entries are keyed self-invalidating
    /// (schema identity + store flush epoch) and capped small.
    split_memo: Arc<whatif_core::SplitMemo>,
}

impl SharedData {
    /// Loads a dataset (in-memory backend).
    pub fn load(dataset: Dataset) -> SharedData {
        Self::load_with_backend(dataset, olap_cube::StoreBackend::Memory)
            .expect("memory backend never fails")
    }

    /// Loads a dataset over an explicit storage backend. `File` puts
    /// the workforce cube in a fresh single-file store (a replication
    /// leader's layout); `Attach` mounts an existing store file — the
    /// deterministic dataset build supplies schema and geometry while
    /// the chunk bytes come from the file (a replication follower's
    /// base image). The running/retail examples are memory-only.
    pub fn load_with_backend(
        dataset: Dataset,
        backend: olap_cube::StoreBackend,
    ) -> Result<SharedData, String> {
        if !matches!(backend, olap_cube::StoreBackend::Memory)
            && matches!(dataset, Dataset::Running | Dataset::Retail)
        {
            return Err(format!(
                "dataset {dataset:?} only supports the memory backend"
            ));
        }
        let data = match dataset {
            Dataset::Running => Loaded::Running(running_example()),
            Dataset::Retail => Loaded::Retail(retail_example(42)),
            Dataset::Workforce => Loaded::Workforce(Box::new(Workforce::build(WorkforceConfig {
                backend,
                ..WorkforceConfig::default()
            }))),
            Dataset::Bench => Loaded::Workforce(Box::new(Workforce::build(WorkforceConfig {
                employees: 400,
                departments: 12,
                changing: 80,
                employee_extent: 1,
                accounts: 4,
                scenarios: 2,
                backend,
                ..WorkforceConfig::default()
            }))),
        };
        Ok(SharedData {
            data,
            cache: None,
            split_memo: Arc::new(whatif_core::SplitMemo::new()),
        })
    }

    /// Enables (mb > 0) or disables (mb = 0) the shared scenario-delta
    /// cache. Call before sharing the data across sessions.
    pub fn set_cache_mb(&mut self, mb: usize) {
        self.cache = if mb > 0 {
            Some(Arc::new(whatif_core::ScenarioCache::with_capacity_mb(mb)))
        } else {
            None
        };
    }

    /// The dataset's cube.
    pub fn cube(&self) -> &olap_cube::Cube {
        self.data.cube()
    }

    /// The shared scenario-delta cache, if enabled.
    pub fn cache(&self) -> Option<&Arc<whatif_core::ScenarioCache>> {
        self.cache.as_ref()
    }

    /// The shared positive/split memo.
    pub fn split_memo(&self) -> &Arc<whatif_core::SplitMemo> {
        &self.split_memo
    }

    /// Starts the cube's buffer-pool I/O workers (idempotent intent:
    /// call once per process, before sessions attach).
    pub fn start_io_threads(&self, k: usize) {
        self.data.cube().start_io_threads(k);
    }
}

/// One interactive session: private tuning and budget over an
/// [`Arc<SharedData>`] that may be shared with other sessions.
pub struct Session {
    shared: Arc<SharedData>,
    threads: usize,
    prefetch: usize,
    /// Inner-loop implementation for the chunked executor (`--kernel`):
    /// run kernels (default) or the bit-identical scalar oracle.
    kernel: whatif_core::KernelKind,
    /// Peak-memory ceiling in cells for this session's what-if queries
    /// and `.rollup`s; 0 = unlimited. Enforced through the multi-pass
    /// budget machinery (reject-with-error for merges, more passes for
    /// aggregations).
    budget_cells: u64,
    /// Per-request wall-clock deadline in milliseconds; 0 = unlimited.
    /// The clock starts when execution starts, and the chunked executor
    /// checks it cooperatively at pass/slice boundaries — an expired
    /// request aborts with `DeadlineExceeded` and the session (forest,
    /// budget, cache) is untouched.
    deadline_ms: u64,
    /// This session's scenario forest (`.fork` / `.switch` /
    /// `.scenarios`): private, like the tuning state — forks are an
    /// analyst's exploration, not shared server state.
    forest: ScenarioForest,
}

/// [`Session::with_cache`] was called after the session's data had
/// already been shared with other sessions; the cache must be
/// configured on [`SharedData`] *before* attaching ([`SharedData::set_cache_mb`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfigError;

impl fmt::Display for CacheConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cannot configure the cache through an already-shared session; \
             call SharedData::set_cache_mb before attaching sessions"
        )
    }
}

impl std::error::Error for CacheConfigError {}

/// What the caller should do after a line.
#[derive(Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Print this and continue.
    Continue(String),
    /// Print this and exit.
    Quit(String),
    /// The request's deadline expired mid-execution. The session is
    /// still healthy — the server reports this as an error frame but
    /// keeps the connection (and the session state) alive.
    Deadline(String),
}

impl Session {
    /// Loads a dataset into a fresh, unshared session.
    pub fn new(dataset: Dataset) -> Session {
        Session::attach(Arc::new(SharedData::load(dataset)))
    }

    /// Attaches a new session to already-loaded (possibly shared) data.
    /// This is how the server hands every connection its own session
    /// over one pool and one cache.
    pub fn attach(shared: Arc<SharedData>) -> Session {
        Session {
            shared,
            threads: 1,
            prefetch: 0,
            kernel: whatif_core::KernelKind::default(),
            budget_cells: 0,
            deadline_ms: 0,
            forest: ScenarioForest::new(),
        }
    }

    /// The shared data this session runs over.
    pub fn shared(&self) -> &Arc<SharedData> {
        &self.shared
    }

    /// Counters of the shared positive/split memo (hits = re-splits
    /// avoided).
    pub fn split_stats(&self) -> whatif_core::SplitMemoStats {
        self.shared.split_memo.stats()
    }

    /// Sets the executor parallelism degree (`--threads N`); 1 = serial.
    pub fn with_threads(mut self, threads: usize) -> Session {
        self.threads = threads.max(1);
        self
    }

    /// Sets the prefetch lookahead (`--prefetch K`); 0 = off. A nonzero
    /// K starts the cube's buffer-pool I/O workers so query execution
    /// overlaps store reads with compute.
    pub fn with_prefetch(mut self, prefetch: usize) -> Session {
        self.prefetch = prefetch;
        if prefetch > 0 {
            self.shared.cube().start_io_threads(prefetch.min(4));
        }
        self
    }

    /// Enables the scenario-delta cache (`--cache MB`); 0 = off. What-if
    /// queries in this session then reuse merged output chunks across
    /// repeated or edited scenarios (DESIGN.md §10, §14). Must be called
    /// before the session's data is shared with other sessions (the
    /// server configures the cache on [`SharedData`] instead); calling
    /// it later is a [`CacheConfigError`], not a panic — an embedder's
    /// misconfiguration should surface as an error it can handle.
    pub fn with_cache(mut self, mb: usize) -> Result<Session, CacheConfigError> {
        Arc::get_mut(&mut self.shared)
            .ok_or(CacheConfigError)?
            .set_cache_mb(mb);
        Ok(self)
    }

    /// Sets the session's peak-memory budget in cells (`--budget N`);
    /// 0 = unlimited.
    pub fn with_budget(mut self, cells: u64) -> Session {
        self.budget_cells = cells;
        self
    }

    /// Sets the session's per-request deadline in milliseconds
    /// (`--deadline-ms N`); 0 = unlimited.
    pub fn with_deadline_ms(mut self, ms: u64) -> Session {
        self.deadline_ms = ms;
        self
    }

    /// Selects the executor inner-loop implementation
    /// (`--kernel scalar|runs`). `runs` is the default; `scalar` is the
    /// cell-at-a-time oracle the run kernels are gated against.
    pub fn with_kernel(mut self, kernel: whatif_core::KernelKind) -> Session {
        self.kernel = kernel;
        self
    }

    fn data(&self) -> &Loaded {
        &self.shared.data
    }

    /// The deadline instant for a request starting *now*, per the
    /// session's `.deadline` setting (`None` = unlimited).
    fn request_deadline(&self) -> Option<std::time::Instant> {
        (self.deadline_ms > 0)
            .then(|| std::time::Instant::now() + std::time::Duration::from_millis(self.deadline_ms))
    }

    fn context(&self) -> QueryContext<'_> {
        let mut ctx = QueryContext::new(self.data().cube());
        ctx.threads = self.threads;
        ctx.prefetch = self.prefetch;
        ctx.cache = self.shared.cache.clone();
        ctx.budget_cells = self.budget_cells;
        ctx.kernel = self.kernel;
        ctx.deadline = self.request_deadline();
        for (name, dim, members) in self.data().named_sets() {
            ctx.define_set(&name, dim, &members);
        }
        ctx
    }

    /// Handles one input line.
    pub fn handle(&mut self, line: &str) -> Outcome {
        let line = line.trim();
        if line.is_empty() {
            return Outcome::Continue(String::new());
        }
        if let Some(rest) = line.strip_prefix('.') {
            return self.command(rest);
        }
        match olap_mdx::execute(&self.context(), line) {
            Ok(grid) => Outcome::Continue(grid.to_string()),
            Err(e) if is_deadline(&e) => Outcome::Deadline(format!("error: {e}")),
            Err(e) => Outcome::Continue(format!("error: {e}")),
        }
    }

    fn command(&mut self, cmd: &str) -> Outcome {
        let mut parts = cmd.splitn(2, ' ');
        let head = parts.next().unwrap_or("").to_ascii_lowercase();
        let arg = parts.next().unwrap_or("").trim();
        match head.as_str() {
            "help" | "h" => Outcome::Continue(HELP.to_string()),
            "quit" | "q" | "exit" => Outcome::Quit("bye".to_string()),
            "schema" => Outcome::Continue(self.schema_text()),
            "cache" => Outcome::Continue(match &self.shared.cache {
                None => "scenario cache off — start the shell with --cache <MB>".to_string(),
                Some(c) => {
                    let s = c.stats();
                    let hit_rate = if s.lookups > 0 {
                        100.0 * s.hits as f64 / s.lookups as f64
                    } else {
                        0.0
                    };
                    format!(
                        "scenario cache: {} entries, {} KiB / {} KiB, \
                         {} lookups, {} hits ({hit_rate:.1}%), \
                         {} invalidations, {} evictions",
                        c.len(),
                        s.bytes / 1024,
                        c.capacity() / 1024,
                        s.lookups,
                        s.hits,
                        s.invalidations,
                        s.evictions,
                    )
                }
            }),
            "stats" => {
                let s = self.data().cube().pool_stats();
                Outcome::Continue(format!(
                    "buffer pool: {} hits, {} misses, {} evictions, {} overflows\n\
                     peaks: {} resident, {} pinned\n\
                     prefetch: {} issued, {} hits, {} wasted\n\
                     faults: {} read errors, {} retries, {} write retries\n\
                     flushes: {} committed",
                    s.hits,
                    s.misses,
                    s.evictions,
                    s.overflows,
                    s.peak_resident,
                    s.peak_pinned,
                    s.prefetch_issued,
                    s.prefetch_hits,
                    s.prefetch_wasted,
                    s.read_errors,
                    s.retries,
                    s.write_retries,
                    s.flushes,
                ))
            }
            "commit" => match self.data().cube().flush() {
                Err(e) => Outcome::Continue(format!("flush error: {e}")),
                Ok(()) => Outcome::Continue(self.data().cube().with_pool(|pool| {
                    use olap_store::ChunkStore as _;
                    let guard = pool.store();
                    match guard.as_any().downcast_ref::<olap_store::FileStore>() {
                        Some(fs) => {
                            let w = fs.wal_stats();
                            format!(
                                "flushed at epoch {} — WAL: {} txns committed, \
                                 {} aborted, {} records ({} bytes), {} syncs, \
                                 {} checkpoints",
                                fs.flush_epoch(),
                                w.txns_committed,
                                w.txns_aborted,
                                w.records_logged,
                                w.bytes_logged,
                                w.syncs,
                                w.checkpoints,
                            )
                        }
                        None => format!(
                            "flushed (memory-backed store: epoch {}, no WAL)",
                            guard.flush_epoch()
                        ),
                    }
                })),
            },
            "sets" => {
                let sets = self.data().named_sets();
                if sets.is_empty() {
                    return Outcome::Continue("(no named sets in this dataset)".to_string());
                }
                let schema = self.data().cube().schema();
                let mut out = String::new();
                for (name, dim, members) in sets {
                    let names: Vec<&str> = members
                        .iter()
                        .take(8)
                        .map(|&m| schema.dim(dim).member_name(m))
                        .collect();
                    let more = members.len().saturating_sub(8);
                    let _ = writeln!(
                        out,
                        "[{name}] — {} members: {}{}",
                        members.len(),
                        names.join(", "),
                        if more > 0 {
                            format!(", … (+{more})")
                        } else {
                            String::new()
                        }
                    );
                }
                Outcome::Continue(out)
            }
            "instances" => {
                if arg.is_empty() {
                    return Outcome::Continue("usage: .instances <member name>".to_string());
                }
                Outcome::Continue(self.instances_text(arg))
            }
            "explain" => {
                if arg.is_empty() {
                    return Outcome::Continue("usage: .explain <extended MDX query>".to_string());
                }
                Outcome::Continue(self.explain(arg))
            }
            "csv" => {
                if arg.is_empty() {
                    return Outcome::Continue("usage: .csv <query>".to_string());
                }
                match olap_mdx::execute(&self.context(), arg) {
                    Ok(grid) => Outcome::Continue(grid.to_csv()),
                    Err(e) if is_deadline(&e) => Outcome::Deadline(format!("error: {e}")),
                    Err(e) => Outcome::Continue(format!("error: {e}")),
                }
            }
            "budget" => {
                if arg.is_empty() {
                    return Outcome::Continue(match self.budget_cells {
                        0 => "session budget: unlimited".to_string(),
                        n => format!("session budget: {n} cells"),
                    });
                }
                match arg.parse::<u64>() {
                    Ok(n) => {
                        self.budget_cells = n;
                        Outcome::Continue(match n {
                            0 => "session budget: unlimited".to_string(),
                            n => format!("session budget: {n} cells"),
                        })
                    }
                    Err(_) => Outcome::Continue("usage: .budget [cells]".to_string()),
                }
            }
            "deadline" => {
                if arg.is_empty() {
                    return Outcome::Continue(match self.deadline_ms {
                        0 => "request deadline: unlimited".to_string(),
                        n => format!("request deadline: {n} ms"),
                    });
                }
                match arg.parse::<u64>() {
                    Ok(n) => {
                        self.deadline_ms = n;
                        Outcome::Continue(match n {
                            0 => "request deadline: unlimited".to_string(),
                            n => format!("request deadline: {n} ms"),
                        })
                    }
                    Err(_) => Outcome::Continue("usage: .deadline [ms]".to_string()),
                }
            }
            "apply" => self.apply(arg),
            "fork" => Outcome::Continue(self.fork(arg)),
            "switch" => Outcome::Continue(self.switch(arg)),
            "scenarios" => Outcome::Continue(self.scenarios()),
            "change" => Outcome::Continue(self.change(arg)),
            "rollup" => Outcome::Continue(self.rollup()),
            other => Outcome::Continue(format!("unknown command .{other} — try .help")),
        }
    }

    fn schema_text(&self) -> String {
        let schema = self.data().cube().schema();
        let mut out = String::new();
        for d in schema.dim_ids() {
            let dim = schema.dim(d);
            let varying = schema
                .varying(d)
                .map(|v| {
                    format!(
                        " — varying over {} ({} instances, {} changing members)",
                        schema.dim(v.parameter_dim()).name(),
                        v.instance_count(),
                        v.changing_members().len(),
                    )
                })
                .unwrap_or_default();
            let _ = writeln!(
                out,
                "{:<14} {:>6} leaves, depth {}{}{}",
                dim.name(),
                dim.leaf_count(),
                dim.depth(),
                if dim.is_ordered() { ", ordered" } else { "" },
                varying,
            );
        }
        let _ = writeln!(
            out,
            "cube: {} cells in {} chunks",
            self.data().cube().present_cell_count().unwrap_or(0),
            self.data().cube().chunk_count(),
        );
        out
    }

    fn instances_text(&self, member: &str) -> String {
        let schema = self.data().cube().schema();
        for d in schema.dim_ids() {
            if let Some(v) = schema.varying(d) {
                if let Some(m) = schema.dim(d).find(member) {
                    let ids = v.instances_of(m);
                    if ids.is_empty() {
                        return format!("{member} has no instances (non-leaf?)");
                    }
                    let names = schema.dim(v.parameter_dim()).leaf_names();
                    let mut out = String::new();
                    for &i in ids {
                        let inst = v.instance(i);
                        let _ = writeln!(
                            out,
                            "{:<24} valid at {}",
                            v.instance_name(schema.dim(d), i),
                            inst.validity.display_with(&names),
                        );
                    }
                    return out;
                }
            }
        }
        format!("no varying-dimension member named {member:?}")
    }

    fn explain(&self, query: &str) -> String {
        let parsed = match parse(query) {
            Ok(q) => q,
            Err(e) => return format!("parse error: {e}"),
        };
        let mut out = String::new();
        let _ = writeln!(out, "parsed: {parsed}");
        match &parsed.with {
            None => {
                let _ = writeln!(out, "no WITH clause — plain OLAP query, no scenario");
            }
            Some(clause) => {
                // Theorem 4.1 compilation + the Section 8 optimizer.
                match olap_mdx::compile_with(&self.context(), clause) {
                    Ok(scenario) => {
                        let expr = whatif_core::compile(&scenario);
                        let (optimized, report) = whatif_core::optimize(&expr);
                        let _ = writeln!(out, "algebra:   {expr:?}");
                        let _ = writeln!(out, "optimized: {optimized:?}");
                        let _ = writeln!(
                            out,
                            "rewrites: {} fused, {} pushed, {} dropped",
                            report.selections_fused,
                            report.selections_pushed,
                            report.identities_dropped,
                        );
                    }
                    Err(e) => {
                        let _ = writeln!(out, "scenario compilation error: {e}");
                    }
                }
                // Run it and surface the executor's report.
                match olap_mdx::execute_with_report(&self.context(), query) {
                    Ok((grid, report)) => {
                        let _ = writeln!(
                            out,
                            "result: {} × {} grid, {} non-⊥ cells",
                            grid.height(),
                            grid.width(),
                            grid.present_count(),
                        );
                        if let Some(r) = report {
                            let _ = writeln!(
                                out,
                                "executor: {} pass(es), {} chunk reads, merge graph                                  {}/{} (nodes/edges), predicted pebbles {}, peak                                  buffers {}, {} cells relocated, {} dropped",
                                r.passes,
                                r.chunks_read,
                                r.graph_nodes,
                                r.graph_edges,
                                r.predicted_pebbles,
                                r.peak_out_buffers,
                                r.cells_relocated,
                                r.cells_dropped,
                            );
                        }
                    }
                    Err(e) => {
                        let _ = writeln!(out, "execution error: {e}");
                    }
                }
            }
        }
        out
    }

    /// `.apply <semantics> <m1,m2,...>`: record a negative scenario on
    /// the current fork and run it; bare `.apply` re-runs whatever the
    /// current fork assumes (a `.switch`-then-`.apply` toggle). Reports
    /// only *deterministic* facts about the result — cell count, an
    /// order-independent digest, and the pass count. Cache/pool counters
    /// are deliberately omitted: under a shared pool and cache they
    /// depend on sibling sessions, and the server's bench asserts
    /// byte-identical responses across concurrent and serial runs.
    fn apply(&mut self, arg: &str) -> Outcome {
        const USAGE: &str =
            "usage: .apply <static|forward|xforward|backward|xbackward> <m1,m2,...> \
             — bare .apply re-runs the current fork's scenario";
        if arg.is_empty() {
            let Some(scenario) = self.forest.scenario() else {
                return Outcome::Continue(format!(
                    "{USAGE}\n(fork '{}' has no scenario to re-run yet)",
                    self.forest.current_name()
                ));
            };
            return self.run_scenario(&scenario);
        }
        let mut parts = arg.split_whitespace();
        let (Some(sem), Some(moments)) = (parts.next(), parts.next()) else {
            return Outcome::Continue(USAGE.to_string());
        };
        let semantics = match sem.to_ascii_lowercase().as_str() {
            "static" => whatif_core::Semantics::Static,
            "forward" | "fwd" => whatif_core::Semantics::Forward,
            "xforward" => whatif_core::Semantics::ExtendedForward,
            "backward" | "bwd" => whatif_core::Semantics::Backward,
            "xbackward" => whatif_core::Semantics::ExtendedBackward,
            _ => return Outcome::Continue(USAGE.to_string()),
        };
        let parsed: std::result::Result<Vec<u32>, _> = moments
            .split(',')
            .map(|m| m.trim().parse::<u32>())
            .collect();
        let Ok(perspectives) = parsed else {
            return Outcome::Continue(USAGE.to_string());
        };
        let dim = {
            let schema = self.data().cube().schema();
            match schema.dim_ids().find(|&d| schema.varying(d).is_some()) {
                Some(d) => d,
                None => {
                    return Outcome::Continue("this dataset has no varying dimension".to_string())
                }
            }
        };
        let spec = whatif_core::PerspectiveSpec::new(
            dim,
            perspectives.iter().copied(),
            semantics,
            whatif_core::Mode::Visual,
        );
        self.forest.set_negative(spec.clone());
        self.run_scenario(&whatif_core::Scenario::Negative(spec))
    }

    /// Runs one scenario through the session's executor options and
    /// renders the deterministic `.apply` summary line.
    fn run_scenario(&self, scenario: &whatif_core::Scenario) -> Outcome {
        let label = match scenario {
            whatif_core::Scenario::Negative(spec) => format!(
                "{} {{{}}}",
                semantics_name(spec.semantics),
                spec.perspectives
                    .iter()
                    .map(|m| m.to_string())
                    .collect::<Vec<_>>()
                    .join(","),
            ),
            whatif_core::Scenario::Positive { changes, .. } => format!(
                "{} change(s) [fork '{}']",
                changes.len(),
                self.forest.current_name()
            ),
        };
        // The positive/split path is a pure function of the base cube
        // and the change relation, so a fork replaying it answers from
        // the memo — zero re-splits, byte-identical reply.
        let positive_key = match scenario {
            whatif_core::Scenario::Positive { dim, changes, mode } => {
                let key = whatif_core::memo_key(self.data().cube(), *dim, *mode, changes.iter());
                if let Some(hit) = self.shared.split_memo.lookup(key) {
                    return Outcome::Continue(format!(
                        "applied {label}: {} cells, digest {:016x}, 0 pass(es)",
                        hit.cells, hit.digest,
                    ));
                }
                Some(key)
            }
            whatif_core::Scenario::Negative(_) => None,
        };
        let strategy = whatif_core::Strategy::Chunked(whatif_core::OrderPolicy::Pebbling);
        let opts = whatif_core::ExecOpts {
            threads: self.threads,
            prefetch: self.prefetch,
            cache: self.shared.cache.clone(),
            budget_cells: self.budget_cells,
            kernel: self.kernel,
            deadline: self.request_deadline(),
        };
        match whatif_core::apply_opts(self.data().cube(), scenario, &strategy, None, opts) {
            Ok(result) => match cell_digest(&result.cube) {
                Ok((count, digest)) => {
                    let passes = result.report.passes;
                    if let Some(key) = positive_key {
                        self.shared.split_memo.insert(
                            key,
                            Arc::new(whatif_core::SplitResult {
                                schema: result.schema,
                                cube: result.cube,
                                cells: count,
                                digest,
                            }),
                        );
                    }
                    Outcome::Continue(format!(
                        "applied {label}: {count} cells, digest {digest:016x}, {passes} pass(es)",
                    ))
                }
                Err(e) => Outcome::Continue(format!("error: {e}")),
            },
            Err(e @ whatif_core::WhatIfError::DeadlineExceeded) => {
                Outcome::Deadline(format!("error: {e}"))
            }
            Err(e) => Outcome::Continue(format!("error: {e}")),
        }
    }

    /// `.fork <name>`: fork the current scenario copy-on-write and
    /// switch to the child.
    fn fork(&mut self, arg: &str) -> String {
        if arg.is_empty() || arg.split_whitespace().count() != 1 {
            return "usage: .fork <name>".to_string();
        }
        let parent = self.forest.current_name().to_string();
        match self.forest.fork(arg) {
            Ok(()) => format!("forked '{arg}' from '{parent}' — now on '{arg}'"),
            Err(e) => format!("error: {e}"),
        }
    }

    /// `.switch <name>`: make another fork current. Re-running it is
    /// then a warm-cache replay (the versioned cache kept its entries).
    fn switch(&mut self, arg: &str) -> String {
        if arg.is_empty() {
            return "usage: .switch <name>".to_string();
        }
        match self.forest.switch(arg) {
            Ok(()) => format!("now on '{arg}'"),
            Err(e) => format!("error: {e}"),
        }
    }

    /// `.scenarios`: the session's fork tree.
    fn scenarios(&self) -> String {
        let mut out = String::new();
        for r in self.forest.rows() {
            let parent = r
                .parent
                .map(|p| format!("<- {p}"))
                .unwrap_or_else(|| "(root)".to_string());
            let shared = if r.shared_changes > 0 {
                format!(" [{} changes shared]", r.shared_changes)
            } else {
                String::new()
            };
            let _ = writeln!(
                out,
                "{} {:<12} {:<12} {}{shared}",
                if r.current { "*" } else { " " },
                r.name,
                parent,
                r.summary,
            );
        }
        out
    }

    /// `.change <member> <new parent> <moment>`: append a positive
    /// change to the current fork (run it with a bare `.apply`).
    fn change(&mut self, arg: &str) -> String {
        const USAGE: &str = "usage: .change <member> <new parent> <moment>";
        let parts: Vec<&str> = arg.split_whitespace().collect();
        let [member, parent, moment] = parts[..] else {
            return USAGE.to_string();
        };
        let (dim, dim_name, m, n, at) = {
            let schema = self.data().cube().schema();
            let Some(dim) = schema.dim_ids().find(|&d| schema.varying(d).is_some()) else {
                return "this dataset has no varying dimension".to_string();
            };
            let dimension = schema.dim(dim);
            let Some(m) = dimension.find(member) else {
                return format!("no member named {member:?} in {}", dimension.name());
            };
            let Some(n) = dimension.find(parent) else {
                return format!("no member named {parent:?} in {}", dimension.name());
            };
            let at = match moment.parse::<u32>() {
                Ok(t) => t,
                Err(_) => {
                    let v = schema.varying(dim).expect("varying dim found above");
                    let names = schema.dim(v.parameter_dim()).leaf_names();
                    match names.iter().position(|nm| nm.eq_ignore_ascii_case(moment)) {
                        Some(i) => i as u32,
                        None => {
                            return format!("no moment named {moment:?} (and it is not a number)")
                        }
                    }
                }
            };
            (dim, dimension.name().to_string(), m, n, at)
        };
        let change = whatif_core::Change {
            member: m,
            old_parent: None,
            new_parent: n,
            at,
        };
        match self
            .forest
            .add_change(dim, whatif_core::Mode::Visual, change)
        {
            Ok(()) => {
                let c = self.forest.current_changes().expect("change just added");
                format!(
                    "fork '{}': {} change(s) on {dim_name} ({} shared with ancestors)",
                    self.forest.current_name(),
                    c.len(),
                    c.shared_len(),
                )
            }
            Err(e) => format!("error: {e}"),
        }
    }

    /// `.rollup`: one single-dimension group-by per cube dimension, run
    /// through the budget-respecting multi-pass aggregator. A small
    /// session budget means more passes; an impossible one is an error.
    fn rollup(&self) -> String {
        let cube = self.data().cube();
        let schema = cube.schema();
        let ndims = cube.geometry().ndims();
        let masks: Vec<olap_cube::GroupByMask> = (0..ndims as u32).map(|d| 1 << d).collect();
        let budget = match self.budget_cells {
            0 => u64::MAX,
            n => n,
        };
        match olap_cube::CubeAggregator::new(cube).compute_with_budget(&masks, budget) {
            Ok((results, report)) => {
                let mut out = String::new();
                for (d, &mask) in masks.iter().enumerate() {
                    let name = schema.dim(schema.dim_ids().nth(d).expect("dim")).name();
                    let total = results
                        .get(&mask)
                        .map(|r| r.grand_total())
                        .unwrap_or(f64::NAN);
                    let _ = writeln!(out, "{name:<14} total {total}");
                }
                let _ = write!(
                    out,
                    "{} pass(es), peak {} buffer cells",
                    report.passes, report.peak_buffer_cells
                );
                out
            }
            Err(e) => format!("error: {e}"),
        }
    }
}

/// Whether an MDX error is the executor's cooperative deadline abort
/// (the one `-` the server reports without closing the connection).
fn is_deadline(e: &olap_mdx::MdxError) -> bool {
    matches!(
        e,
        olap_mdx::MdxError::WhatIf(whatif_core::WhatIfError::DeadlineExceeded)
    )
}

/// The `.apply` spelling of each semantics variant.
fn semantics_name(s: whatif_core::Semantics) -> &'static str {
    match s {
        whatif_core::Semantics::Static => "static",
        whatif_core::Semantics::Forward => "forward",
        whatif_core::Semantics::ExtendedForward => "xforward",
        whatif_core::Semantics::Backward => "backward",
        whatif_core::Semantics::ExtendedBackward => "xbackward",
    }
}

/// An order-independent digest of a cube's present cells: the wrapping
/// sum of one FNV-1a hash per cell (coordinates, then the value's bit
/// pattern). Identical cell sets digest identically regardless of scan
/// or merge interleaving, which is what lets the server bench check
/// concurrent sessions bit-for-bit against a serial replay.
pub fn cell_digest(cube: &olap_cube::Cube) -> olap_cube::Result<(u64, u64)> {
    let mut count = 0u64;
    let mut digest = 0u64;
    cube.for_each_present(|coords, v| {
        let mut h = whatif_core::Fnv64::new();
        for &c in coords {
            h.write_u32(c);
        }
        h.write_u64(v.to_bits());
        digest = digest.wrapping_add(h.finish());
        count += 1;
    })?;
    Ok((count, digest))
}

/// The `.help` text.
pub const HELP: &str = "\
Enter an (extended) MDX query, or a command:
  .schema              dimensions, axis sizes, varying info
  .instances <member>  a changing member's instances + validity sets
  .sets                named sets registered for this dataset
  .explain <query>     parse, compile, optimize and run a query, with reports
  .csv <query>         run a query and print the grid as CSV
  .apply <sem> <m,..>  run a negative scenario (first varying dim); deterministic
                       summary: cell count, digest, passes. Bare .apply re-runs
                       the current fork's scenario
  .fork <name>         fork the current scenario copy-on-write and switch to it
  .switch <name>       make another fork current (warm-cache replay on re-apply)
  .scenarios           list this session's scenario forks
  .change <m> <p> <t>  append a positive change (member, new parent, moment) to
                       the current fork; run it with bare .apply
  .rollup              per-dimension totals via the budget-aware multi-pass
                       aggregator (small budgets add passes)
  .budget [cells]      show or set this session's peak-memory budget (0 = unlimited)
  .deadline [ms]       show or set the per-request deadline (0 = unlimited); an
                       expired request aborts at a pass boundary, session intact
  .cache               scenario-delta cache statistics (--cache MB to enable)
  .commit              flush dirty chunks atomically; report flush epoch + WAL counters
  .stats               buffer-pool counters (incl. read errors, retries, flushes)
  .help                this text
  .quit                exit

Example what-if (running example dataset):
  WITH PERSPECTIVE {(Jan)} FOR Organization DYNAMIC FORWARD VISUAL
  SELECT {Time.[Qtr1], Time.[Qtr2]} ON COLUMNS,
         {Organization.[FTE], Organization.[Contractor]} ON ROWS
  FROM [Warehouse] WHERE (Location.[NY], Measures.[Salary])";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_parsing() {
        assert_eq!(Dataset::parse("running"), Some(Dataset::Running));
        assert_eq!(Dataset::parse("RETAIL"), Some(Dataset::Retail));
        assert_eq!(Dataset::parse("nope"), None);
    }

    #[test]
    fn help_quit_and_unknown() {
        let mut s = Session::new(Dataset::Running);
        assert!(matches!(s.handle(".help"), Outcome::Continue(t) if t.contains(".schema")));
        assert!(matches!(s.handle(".quit"), Outcome::Quit(_)));
        assert!(matches!(s.handle(".bogus"), Outcome::Continue(t) if t.contains("unknown")));
        assert!(matches!(s.handle("   "), Outcome::Continue(t) if t.is_empty()));
    }

    #[test]
    fn schema_lists_varying_dimension() {
        let mut s = Session::new(Dataset::Running);
        match s.handle(".schema") {
            Outcome::Continue(t) => {
                assert!(t.contains("Organization"));
                assert!(t.contains("varying over Time"));
                assert!(t.contains("ordered"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn instances_shows_joe() {
        let mut s = Session::new(Dataset::Running);
        match s.handle(".instances Joe") {
            Outcome::Continue(t) => {
                assert!(t.contains("FTE/Joe"));
                assert!(t.contains("Contractor/Joe"));
                assert!(t.contains("{Jan"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn queries_produce_grids() {
        let mut s = Session::new(Dataset::Running);
        let q = "SELECT {Time.[Qtr1]} ON COLUMNS, {Organization.[FTE]} ON ROWS \
                 FROM [W] WHERE (Location.[NY], Measures.[Salary])";
        match s.handle(q) {
            Outcome::Continue(t) => assert!(t.contains("FTE"), "{t}"),
            other => panic!("{other:?}"),
        }
        // What-if through the shell.
        let q = "WITH PERSPECTIVE {(Jan)} FOR Organization DYNAMIC FORWARD VISUAL \
                 SELECT {Time.[Qtr1]} ON COLUMNS, {Organization.[FTE]} ON ROWS \
                 FROM [W] WHERE (Location.[NY], Measures.[Salary])";
        match s.handle(q) {
            Outcome::Continue(t) => assert!(t.contains("60"), "{t}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn threaded_session_matches_serial() {
        let q = "WITH PERSPECTIVE {(Feb), (Apr)} FOR Organization DYNAMIC FORWARD VISUAL \
                 SELECT {Time.[Qtr1], Time.[Qtr2]} ON COLUMNS, \
                 {Organization.[FTE], Organization.[PTE], Organization.[Contractor]} ON ROWS \
                 FROM [W] WHERE (Location.[NY], Measures.[Salary])";
        let mut serial = Session::new(Dataset::Running);
        let mut parallel = Session::new(Dataset::Running).with_threads(4);
        assert_eq!(serial.handle(q), parallel.handle(q));
    }

    #[test]
    fn prefetching_session_matches_serial() {
        let q = "WITH PERSPECTIVE {(Feb), (Apr)} FOR Organization DYNAMIC FORWARD VISUAL \
                 SELECT {Time.[Qtr1], Time.[Qtr2]} ON COLUMNS, \
                 {Organization.[FTE], Organization.[PTE], Organization.[Contractor]} ON ROWS \
                 FROM [W] WHERE (Location.[NY], Measures.[Salary])";
        let mut plain = Session::new(Dataset::Running);
        let mut hinted = Session::new(Dataset::Running).with_prefetch(3);
        assert_eq!(plain.handle(q), hinted.handle(q));
    }

    #[test]
    fn cached_session_matches_uncached() {
        let q = "WITH PERSPECTIVE {(Feb), (Apr)} FOR Organization DYNAMIC FORWARD VISUAL \
                 SELECT {Time.[Qtr1], Time.[Qtr2]} ON COLUMNS, \
                 {Organization.[FTE], Organization.[PTE], Organization.[Contractor]} ON ROWS \
                 FROM [W] WHERE (Location.[NY], Measures.[Salary])";
        let mut plain = Session::new(Dataset::Running);
        let mut cached = Session::new(Dataset::Running).with_cache(16).unwrap();
        // Twice: the second cached run replays from a warm cache and
        // must still render the identical grid.
        assert_eq!(plain.handle(q), cached.handle(q));
        assert_eq!(plain.handle(q), cached.handle(q));
        match cached.handle(".cache") {
            Outcome::Continue(t) => {
                assert!(t.contains("lookups"), "{t}");
                assert!(!t.contains("cache off"), "{t}");
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            Session::new(Dataset::Running).handle(".cache"),
            Outcome::Continue(t) if t.contains("cache off")
        ));
    }

    #[test]
    fn stats_command_reports_pool_counters() {
        let mut s = Session::new(Dataset::Running);
        // Run a query so the counters are nonzero.
        s.handle(
            "SELECT {Time.[Qtr1]} ON COLUMNS, {Organization.[FTE]} ON ROWS \
             FROM [W] WHERE (Location.[NY], Measures.[Salary])",
        );
        match s.handle(".stats") {
            Outcome::Continue(t) => {
                assert!(t.contains("buffer pool:"), "{t}");
                assert!(t.contains("read errors"), "{t}");
                assert!(t.contains("retries"), "{t}");
                assert!(t.contains("write retries"), "{t}");
                assert!(t.contains("flushes:"), "{t}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn commit_reports_epoch_on_memory_backed_dataset() {
        let mut s = Session::new(Dataset::Running);
        match s.handle(".commit") {
            Outcome::Continue(t) => {
                assert!(t.contains("flushed"), "{t}");
                assert!(t.contains("no WAL"), "{t}");
            }
            other => panic!("{other:?}"),
        }
        // A clean pool has nothing staged, so no write-back transaction
        // was committed — the counter exists but stays at zero.
        match s.handle(".stats") {
            Outcome::Continue(t) => assert!(t.contains("flushes: 0 committed"), "{t}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn errors_are_messages_not_crashes() {
        let mut s = Session::new(Dataset::Running);
        match s.handle("SELECT FROM NOWHERE") {
            Outcome::Continue(t) => assert!(t.starts_with("error:")),
            other => panic!("{other:?}"),
        }
        match s.handle(".explain SELECT nonsense") {
            Outcome::Continue(t) => assert!(t.contains("error"), "{t}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn csv_command_renders_csv() {
        let mut s = Session::new(Dataset::Running);
        let q = ".csv SELECT {Time.[Qtr1]} ON COLUMNS, {Organization.[FTE]} ON ROWS \
                 FROM [W] WHERE (Location.[NY], Measures.[Salary])";
        match s.handle(q) {
            Outcome::Continue(t) => {
                assert!(t.starts_with("row,Qtr1"), "{t}");
                assert!(t.contains("FTE,"), "{t}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn explain_reports_executor_stats() {
        let mut s = Session::new(Dataset::Running);
        let q = ".explain WITH PERSPECTIVE {(Feb), (Apr)} FOR Organization DYNAMIC FORWARD \
                 SELECT {Time.[Qtr1]} ON COLUMNS, {Organization.[PTE]} ON ROWS \
                 FROM [W] WHERE (Location.[NY], Measures.[Salary])";
        match s.handle(q) {
            Outcome::Continue(t) => {
                assert!(t.contains("algebra:"), "{t}");
                assert!(t.contains("2 pass(es)"), "{t}");
                assert!(t.contains("predicted pebbles"), "{t}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn apply_digest_is_identical_across_executor_configs() {
        let baseline = match Session::new(Dataset::Running).handle(".apply forward 1,3") {
            Outcome::Continue(t) => t,
            other => panic!("{other:?}"),
        };
        assert!(baseline.contains("digest"), "{baseline}");
        assert!(baseline.contains("cells"), "{baseline}");
        for mut s in [
            Session::new(Dataset::Running).with_threads(4),
            Session::new(Dataset::Running).with_prefetch(2),
            Session::new(Dataset::Running).with_cache(16).unwrap(),
        ] {
            match s.handle(".apply forward 1,3") {
                Outcome::Continue(t) => assert_eq!(t, baseline),
                other => panic!("{other:?}"),
            }
        }
        // A warm cache replays the same answer.
        let mut cached = Session::new(Dataset::Running).with_cache(16).unwrap();
        cached.handle(".apply forward 1,3");
        assert!(matches!(
            cached.handle(".apply forward 1,3"),
            Outcome::Continue(t) if t == baseline
        ));
    }

    #[test]
    fn apply_rejects_usage_errors() {
        let mut s = Session::new(Dataset::Running);
        for bad in [".apply", ".apply sideways 1", ".apply forward one,two"] {
            match s.handle(bad) {
                Outcome::Continue(t) => assert!(t.starts_with("usage:"), "{bad}: {t}"),
                other => panic!("{other:?}"),
            }
        }
        // The retail dataset's varying Product dimension works too.
        assert!(matches!(
            Session::new(Dataset::Retail).handle(".apply forward 1"),
            Outcome::Continue(t) if t.contains("digest")
        ));
    }

    #[test]
    fn budget_command_and_rejection() {
        let mut s = Session::new(Dataset::Running);
        assert!(matches!(
            s.handle(".budget"),
            Outcome::Continue(t) if t.contains("unlimited")
        ));
        assert!(matches!(
            s.handle(".budget 1"),
            Outcome::Continue(t) if t.contains("1 cells")
        ));
        // One cell can never hold a merge buffer: the executor must
        // reject before reading rather than blow the budget.
        match s.handle(".apply forward 1,3") {
            Outcome::Continue(t) => assert!(t.contains("budget"), "{t}"),
            other => panic!("{other:?}"),
        }
        // Raising the budget past the predicted peak lets it through.
        s.handle(".budget 0");
        assert!(matches!(
            s.handle(".apply forward 1,3"),
            Outcome::Continue(t) if t.contains("digest")
        ));
    }

    #[test]
    fn rollup_respects_the_session_budget() {
        let mut s = Session::new(Dataset::Running);
        let unlimited = match s.handle(".rollup") {
            Outcome::Continue(t) => t,
            other => panic!("{other:?}"),
        };
        assert!(unlimited.contains("total"), "{unlimited}");
        assert!(unlimited.contains("1 pass(es)"), "{unlimited}");
        // A budget of one cell cannot host any group-by buffer.
        s.handle(".budget 1");
        assert!(matches!(
            s.handle(".rollup"),
            Outcome::Continue(t) if t.starts_with("error:")
        ));
        // A squeezed-but-feasible budget forces extra passes yet keeps
        // the same totals.
        let mut squeezed = Session::new(Dataset::Running).with_budget(64);
        match squeezed.handle(".rollup") {
            Outcome::Continue(t) => {
                let totals = |s: &str| -> Vec<String> {
                    s.lines()
                        .filter(|l| l.contains("total"))
                        .map(|l| l.to_string())
                        .collect()
                };
                assert_eq!(totals(&t), totals(&unlimited), "{t}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn with_cache_after_sharing_is_an_error_not_a_panic() {
        let session = Session::new(Dataset::Running);
        let _second_owner = session.shared().clone();
        let err = match session.with_cache(16) {
            Err(e) => e,
            Ok(_) => panic!("with_cache on shared data must fail"),
        };
        assert_eq!(err, CacheConfigError);
        assert!(err.to_string().contains("set_cache_mb"), "{err}");
    }

    #[test]
    fn fork_switch_and_reapply_toggle_scenarios() {
        let mut s = Session::new(Dataset::Running).with_cache(16).unwrap();
        let a = match s.handle(".apply forward 1,3") {
            Outcome::Continue(t) => t,
            other => panic!("{other:?}"),
        };
        assert!(matches!(
            s.handle(".fork alt"),
            Outcome::Continue(t) if t.contains("now on 'alt'")
        ));
        let b = match s.handle(".apply forward 2,4") {
            Outcome::Continue(t) => t,
            other => panic!("{other:?}"),
        };
        assert_ne!(a, b);
        // Toggle by switching forks and re-applying bare: each fork
        // replays its own recorded scenario, byte for byte.
        for _ in 0..2 {
            s.handle(".switch main");
            assert!(matches!(s.handle(".apply"), Outcome::Continue(t) if t == a));
            s.handle(".switch alt");
            assert!(matches!(s.handle(".apply"), Outcome::Continue(t) if t == b));
        }
        // …and the warm versioned cache served the toggles without a
        // single invalidation.
        let stats = s.shared().cache().expect("cache on").stats();
        assert_eq!(stats.invalidations, 0, "{stats:?}");
        assert!(stats.hits > 0, "{stats:?}");
        match s.handle(".scenarios") {
            Outcome::Continue(t) => {
                assert!(t.contains("main"), "{t}");
                assert!(t.contains("* alt"), "{t}");
                assert!(t.contains("<- main"), "{t}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn fork_verbs_report_misuse_as_messages() {
        let mut s = Session::new(Dataset::Running);
        assert!(matches!(
            s.handle(".fork"),
            Outcome::Continue(t) if t.starts_with("usage:")
        ));
        assert!(matches!(
            s.handle(".fork main"),
            Outcome::Continue(t) if t.contains("already exists")
        ));
        assert!(matches!(
            s.handle(".switch ghost"),
            Outcome::Continue(t) if t.contains("no fork named")
        ));
        assert!(matches!(
            s.handle(".apply"),
            Outcome::Continue(t) if t.starts_with("usage:")
        ));
    }

    #[test]
    fn warm_positive_replay_answers_from_the_split_memo() {
        let mut s = Session::new(Dataset::Running);
        assert!(matches!(
            s.handle(".change Joe Contractor 2"),
            Outcome::Continue(t) if t.contains("1 change(s)")
        ));
        let cold = match s.handle(".apply") {
            Outcome::Continue(t) => t,
            other => panic!("{other:?}"),
        };
        let after_cold = s.split_stats();
        assert_eq!(after_cold.hits, 0);
        assert_eq!(after_cold.misses, 1);
        // Replay the identical scenario: zero re-splits, and the reply —
        // cell count and digest included — is byte-identical.
        for _ in 0..3 {
            match s.handle(".apply") {
                Outcome::Continue(t) => assert_eq!(t, cold),
                other => panic!("{other:?}"),
            }
        }
        let warm = s.split_stats();
        assert_eq!(warm.hits, 3, "replays must answer from the memo");
        assert_eq!(warm.misses, 1, "only the cold apply may split");
        // A fork replaying the inherited changes hits the same entry; an
        // edit (different change relation) misses and re-splits.
        s.handle(".fork child");
        match s.handle(".apply") {
            Outcome::Continue(t) => assert_eq!(t.replace("fork 'child'", "fork 'main'"), cold),
            other => panic!("{other:?}"),
        }
        assert_eq!(s.split_stats().hits, 4);
        s.handle(".change Lisa Contractor 3");
        assert!(matches!(s.handle(".apply"), Outcome::Continue(t) if t.contains("digest")));
        let end = s.split_stats();
        assert_eq!(end.misses, 2, "an edited relation must re-split");
    }

    #[test]
    fn positive_changes_build_and_apply_through_the_forest() {
        let mut s = Session::new(Dataset::Running);
        // Joe moves under Contractor from moment 2 onward.
        let reply = match s.handle(".change Joe Contractor 2") {
            Outcome::Continue(t) => t,
            other => panic!("{other:?}"),
        };
        assert!(reply.contains("1 change(s)"), "{reply}");
        match s.handle(".apply") {
            Outcome::Continue(t) => {
                assert!(t.contains("change(s) [fork 'main']"), "{t}");
                assert!(t.contains("digest"), "{t}");
            }
            other => panic!("{other:?}"),
        }
        // A fork of the changes shares them copy-on-write; the child's
        // extra edit is invisible to the parent.
        s.handle(".fork more");
        match s.handle(".change Lisa Contractor 3") {
            Outcome::Continue(t) => {
                assert!(t.contains("2 change(s)"), "{t}");
                assert!(t.contains("1 shared"), "{t}");
            }
            other => panic!("{other:?}"),
        }
        s.handle(".switch main");
        assert!(matches!(
            s.handle(".scenarios"),
            Outcome::Continue(t) if t.contains("(1 changes)") && t.contains("(2 changes)")
        ));
        // Moments can be named after parameter-dimension leaves too.
        let by_name = s.handle(".change Joe PTE Mar");
        assert!(
            matches!(&by_name, Outcome::Continue(t) if t.contains("change(s)")),
            "{by_name:?}"
        );
    }

    #[test]
    fn sessions_attached_to_shared_data_share_the_cache() {
        let mut shared = SharedData::load(Dataset::Running);
        shared.set_cache_mb(16);
        let shared = Arc::new(shared);
        let mut a = Session::attach(shared.clone());
        let mut b = Session::attach(shared.clone());
        let ra = a.handle(".apply forward 1,3");
        let rb = b.handle(".apply forward 1,3");
        assert_eq!(ra, rb);
        // Session b's run hit deltas that session a populated.
        let stats = shared.cache().expect("cache on").stats();
        assert!(stats.hits > 0, "{stats:?}");
    }

    #[test]
    fn explain_reports_grid_shape() {
        let mut s = Session::new(Dataset::Running);
        let q = ".explain WITH PERSPECTIVE {(Feb)} FOR Organization STATIC \
                 SELECT {Time.[Qtr1]} ON COLUMNS, {Organization.[PTE]} ON ROWS \
                 FROM [W] WHERE (Location.[NY], Measures.[Salary])";
        match s.handle(q) {
            Outcome::Continue(t) => {
                assert!(t.contains("parsed:"));
                assert!(t.contains("1 × 1 grid"));
            }
            other => panic!("{other:?}"),
        }
    }
}
