//! The `polap` shell: an interactive session over one of the bundled
//! datasets, accepting extended MDX plus dot-commands. The session logic
//! lives here (testable without a terminal); `main.rs` is a thin stdin
//! loop.

use olap_mdx::{parse, QueryContext};
use olap_model::{DimensionId, MemberId};
use olap_workload::{retail_example, running_example, Workforce, WorkforceConfig};
use std::fmt::Write as _;

/// Which bundled dataset a session runs against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dataset {
    /// The paper's Fig. 1/2 running example.
    Running,
    /// The Fig. 7 retail catalog with margin rules.
    Retail,
    /// The Section 6 workforce-planning workload (1/10th scale).
    Workforce,
}

impl Dataset {
    /// Parses a dataset name.
    pub fn parse(s: &str) -> Option<Dataset> {
        match s.to_ascii_lowercase().as_str() {
            "running" | "example" => Some(Dataset::Running),
            "retail" => Some(Dataset::Retail),
            "workforce" => Some(Dataset::Workforce),
            _ => None,
        }
    }
}

enum Loaded {
    Running(olap_workload::RunningExample),
    Retail(olap_workload::Retail),
    Workforce(Box<Workforce>),
}

impl Loaded {
    fn cube(&self) -> &olap_cube::Cube {
        match self {
            Loaded::Running(e) => &e.cube,
            Loaded::Retail(r) => &r.cube,
            Loaded::Workforce(w) => &w.cube,
        }
    }

    fn named_sets(&self) -> Vec<(String, DimensionId, Vec<MemberId>)> {
        match self {
            Loaded::Workforce(w) => w
                .named_sets()
                .into_iter()
                .map(|(n, m)| (n, w.department, m))
                .collect(),
            _ => Vec::new(),
        }
    }
}

/// One interactive session.
pub struct Session {
    data: Loaded,
    threads: usize,
    prefetch: usize,
    /// Scenario-delta cache shared by every query in the session
    /// (`--cache MB`); `None` = off. Sound because sessions never mutate
    /// the base cube.
    cache: Option<std::sync::Arc<whatif_core::ScenarioCache>>,
}

/// What the caller should do after a line.
#[derive(Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Print this and continue.
    Continue(String),
    /// Print this and exit.
    Quit(String),
}

impl Session {
    /// Loads a dataset.
    pub fn new(dataset: Dataset) -> Session {
        let data = match dataset {
            Dataset::Running => Loaded::Running(running_example()),
            Dataset::Retail => Loaded::Retail(retail_example(42)),
            Dataset::Workforce => {
                Loaded::Workforce(Box::new(Workforce::build(WorkforceConfig::default())))
            }
        };
        Session {
            data,
            threads: 1,
            prefetch: 0,
            cache: None,
        }
    }

    /// Sets the executor parallelism degree (`--threads N`); 1 = serial.
    pub fn with_threads(mut self, threads: usize) -> Session {
        self.threads = threads.max(1);
        self
    }

    /// Sets the prefetch lookahead (`--prefetch K`); 0 = off. A nonzero
    /// K starts the cube's buffer-pool I/O workers so query execution
    /// overlaps store reads with compute.
    pub fn with_prefetch(mut self, prefetch: usize) -> Session {
        self.prefetch = prefetch;
        if prefetch > 0 {
            self.data.cube().start_io_threads(prefetch.min(4));
        }
        self
    }

    /// Enables the scenario-delta cache (`--cache MB`); 0 = off. What-if
    /// queries in this session then reuse merged output chunks across
    /// repeated or edited scenarios (DESIGN.md §10).
    pub fn with_cache(mut self, mb: usize) -> Session {
        self.cache = if mb > 0 {
            Some(std::sync::Arc::new(
                whatif_core::ScenarioCache::with_capacity_mb(mb),
            ))
        } else {
            None
        };
        self
    }

    fn context(&self) -> QueryContext<'_> {
        let mut ctx = QueryContext::new(self.data.cube());
        ctx.threads = self.threads;
        ctx.prefetch = self.prefetch;
        ctx.cache = self.cache.clone();
        for (name, dim, members) in self.data.named_sets() {
            ctx.define_set(&name, dim, &members);
        }
        ctx
    }

    /// Handles one input line.
    pub fn handle(&mut self, line: &str) -> Outcome {
        let line = line.trim();
        if line.is_empty() {
            return Outcome::Continue(String::new());
        }
        if let Some(rest) = line.strip_prefix('.') {
            return self.command(rest);
        }
        match olap_mdx::execute(&self.context(), line) {
            Ok(grid) => Outcome::Continue(grid.to_string()),
            Err(e) => Outcome::Continue(format!("error: {e}")),
        }
    }

    fn command(&mut self, cmd: &str) -> Outcome {
        let mut parts = cmd.splitn(2, ' ');
        let head = parts.next().unwrap_or("").to_ascii_lowercase();
        let arg = parts.next().unwrap_or("").trim();
        match head.as_str() {
            "help" | "h" => Outcome::Continue(HELP.to_string()),
            "quit" | "q" | "exit" => Outcome::Quit("bye".to_string()),
            "schema" => Outcome::Continue(self.schema_text()),
            "cache" => Outcome::Continue(match &self.cache {
                None => "scenario cache off — start the shell with --cache <MB>".to_string(),
                Some(c) => {
                    let s = c.stats();
                    let hit_rate = if s.lookups > 0 {
                        100.0 * s.hits as f64 / s.lookups as f64
                    } else {
                        0.0
                    };
                    format!(
                        "scenario cache: {} entries, {} KiB / {} KiB, \
                         {} lookups, {} hits ({hit_rate:.1}%), {} invalidations",
                        c.len(),
                        s.bytes / 1024,
                        c.capacity() / 1024,
                        s.lookups,
                        s.hits,
                        s.invalidations,
                    )
                }
            }),
            "stats" => {
                let s = self.data.cube().pool_stats();
                Outcome::Continue(format!(
                    "buffer pool: {} hits, {} misses, {} evictions, {} overflows\n\
                     peaks: {} resident, {} pinned\n\
                     prefetch: {} issued, {} hits, {} wasted\n\
                     faults: {} read errors, {} retries, {} write retries\n\
                     flushes: {} committed",
                    s.hits,
                    s.misses,
                    s.evictions,
                    s.overflows,
                    s.peak_resident,
                    s.peak_pinned,
                    s.prefetch_issued,
                    s.prefetch_hits,
                    s.prefetch_wasted,
                    s.read_errors,
                    s.retries,
                    s.write_retries,
                    s.flushes,
                ))
            }
            "commit" => match self.data.cube().flush() {
                Err(e) => Outcome::Continue(format!("flush error: {e}")),
                Ok(()) => Outcome::Continue(self.data.cube().with_pool(|pool| {
                    use olap_store::ChunkStore as _;
                    let guard = pool.store();
                    match guard.as_any().downcast_ref::<olap_store::FileStore>() {
                        Some(fs) => {
                            let w = fs.wal_stats();
                            format!(
                                "flushed at epoch {} — WAL: {} txns committed, \
                                 {} aborted, {} records ({} bytes), {} syncs, \
                                 {} checkpoints",
                                fs.flush_epoch(),
                                w.txns_committed,
                                w.txns_aborted,
                                w.records_logged,
                                w.bytes_logged,
                                w.syncs,
                                w.checkpoints,
                            )
                        }
                        None => format!(
                            "flushed (memory-backed store: epoch {}, no WAL)",
                            guard.flush_epoch()
                        ),
                    }
                })),
            },
            "sets" => {
                let sets = self.data.named_sets();
                if sets.is_empty() {
                    return Outcome::Continue("(no named sets in this dataset)".to_string());
                }
                let schema = self.data.cube().schema();
                let mut out = String::new();
                for (name, dim, members) in sets {
                    let names: Vec<&str> = members
                        .iter()
                        .take(8)
                        .map(|&m| schema.dim(dim).member_name(m))
                        .collect();
                    let more = members.len().saturating_sub(8);
                    let _ = writeln!(
                        out,
                        "[{name}] — {} members: {}{}",
                        members.len(),
                        names.join(", "),
                        if more > 0 {
                            format!(", … (+{more})")
                        } else {
                            String::new()
                        }
                    );
                }
                Outcome::Continue(out)
            }
            "instances" => {
                if arg.is_empty() {
                    return Outcome::Continue("usage: .instances <member name>".to_string());
                }
                Outcome::Continue(self.instances_text(arg))
            }
            "explain" => {
                if arg.is_empty() {
                    return Outcome::Continue("usage: .explain <extended MDX query>".to_string());
                }
                Outcome::Continue(self.explain(arg))
            }
            "csv" => {
                if arg.is_empty() {
                    return Outcome::Continue("usage: .csv <query>".to_string());
                }
                match olap_mdx::execute(&self.context(), arg) {
                    Ok(grid) => Outcome::Continue(grid.to_csv()),
                    Err(e) => Outcome::Continue(format!("error: {e}")),
                }
            }
            other => Outcome::Continue(format!("unknown command .{other} — try .help")),
        }
    }

    fn schema_text(&self) -> String {
        let schema = self.data.cube().schema();
        let mut out = String::new();
        for d in schema.dim_ids() {
            let dim = schema.dim(d);
            let varying = schema
                .varying(d)
                .map(|v| {
                    format!(
                        " — varying over {} ({} instances, {} changing members)",
                        schema.dim(v.parameter_dim()).name(),
                        v.instance_count(),
                        v.changing_members().len(),
                    )
                })
                .unwrap_or_default();
            let _ = writeln!(
                out,
                "{:<14} {:>6} leaves, depth {}{}{}",
                dim.name(),
                dim.leaf_count(),
                dim.depth(),
                if dim.is_ordered() { ", ordered" } else { "" },
                varying,
            );
        }
        let _ = writeln!(
            out,
            "cube: {} cells in {} chunks",
            self.data.cube().present_cell_count().unwrap_or(0),
            self.data.cube().chunk_count(),
        );
        out
    }

    fn instances_text(&self, member: &str) -> String {
        let schema = self.data.cube().schema();
        for d in schema.dim_ids() {
            if let Some(v) = schema.varying(d) {
                if let Some(m) = schema.dim(d).find(member) {
                    let ids = v.instances_of(m);
                    if ids.is_empty() {
                        return format!("{member} has no instances (non-leaf?)");
                    }
                    let names = schema.dim(v.parameter_dim()).leaf_names();
                    let mut out = String::new();
                    for &i in ids {
                        let inst = v.instance(i);
                        let _ = writeln!(
                            out,
                            "{:<24} valid at {}",
                            v.instance_name(schema.dim(d), i),
                            inst.validity.display_with(&names),
                        );
                    }
                    return out;
                }
            }
        }
        format!("no varying-dimension member named {member:?}")
    }

    fn explain(&self, query: &str) -> String {
        let parsed = match parse(query) {
            Ok(q) => q,
            Err(e) => return format!("parse error: {e}"),
        };
        let mut out = String::new();
        let _ = writeln!(out, "parsed: {parsed}");
        match &parsed.with {
            None => {
                let _ = writeln!(out, "no WITH clause — plain OLAP query, no scenario");
            }
            Some(clause) => {
                // Theorem 4.1 compilation + the Section 8 optimizer.
                match olap_mdx::compile_with(&self.context(), clause) {
                    Ok(scenario) => {
                        let expr = whatif_core::compile(&scenario);
                        let (optimized, report) = whatif_core::optimize(&expr);
                        let _ = writeln!(out, "algebra:   {expr:?}");
                        let _ = writeln!(out, "optimized: {optimized:?}");
                        let _ = writeln!(
                            out,
                            "rewrites: {} fused, {} pushed, {} dropped",
                            report.selections_fused,
                            report.selections_pushed,
                            report.identities_dropped,
                        );
                    }
                    Err(e) => {
                        let _ = writeln!(out, "scenario compilation error: {e}");
                    }
                }
                // Run it and surface the executor's report.
                match olap_mdx::execute_with_report(&self.context(), query) {
                    Ok((grid, report)) => {
                        let _ = writeln!(
                            out,
                            "result: {} × {} grid, {} non-⊥ cells",
                            grid.height(),
                            grid.width(),
                            grid.present_count(),
                        );
                        if let Some(r) = report {
                            let _ = writeln!(
                                out,
                                "executor: {} pass(es), {} chunk reads, merge graph                                  {}/{} (nodes/edges), predicted pebbles {}, peak                                  buffers {}, {} cells relocated, {} dropped",
                                r.passes,
                                r.chunks_read,
                                r.graph_nodes,
                                r.graph_edges,
                                r.predicted_pebbles,
                                r.peak_out_buffers,
                                r.cells_relocated,
                                r.cells_dropped,
                            );
                        }
                    }
                    Err(e) => {
                        let _ = writeln!(out, "execution error: {e}");
                    }
                }
            }
        }
        out
    }
}

/// The `.help` text.
pub const HELP: &str = "\
Enter an (extended) MDX query, or a command:
  .schema              dimensions, axis sizes, varying info
  .instances <member>  a changing member's instances + validity sets
  .sets                named sets registered for this dataset
  .explain <query>     parse, compile, optimize and run a query, with reports
  .csv <query>         run a query and print the grid as CSV
  .cache               scenario-delta cache statistics (--cache MB to enable)
  .commit              flush dirty chunks atomically; report flush epoch + WAL counters
  .stats               buffer-pool counters (incl. read errors, retries, flushes)
  .help                this text
  .quit                exit

Example what-if (running example dataset):
  WITH PERSPECTIVE {(Jan)} FOR Organization DYNAMIC FORWARD VISUAL
  SELECT {Time.[Qtr1], Time.[Qtr2]} ON COLUMNS,
         {Organization.[FTE], Organization.[Contractor]} ON ROWS
  FROM [Warehouse] WHERE (Location.[NY], Measures.[Salary])";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_parsing() {
        assert_eq!(Dataset::parse("running"), Some(Dataset::Running));
        assert_eq!(Dataset::parse("RETAIL"), Some(Dataset::Retail));
        assert_eq!(Dataset::parse("nope"), None);
    }

    #[test]
    fn help_quit_and_unknown() {
        let mut s = Session::new(Dataset::Running);
        assert!(matches!(s.handle(".help"), Outcome::Continue(t) if t.contains(".schema")));
        assert!(matches!(s.handle(".quit"), Outcome::Quit(_)));
        assert!(matches!(s.handle(".bogus"), Outcome::Continue(t) if t.contains("unknown")));
        assert!(matches!(s.handle("   "), Outcome::Continue(t) if t.is_empty()));
    }

    #[test]
    fn schema_lists_varying_dimension() {
        let mut s = Session::new(Dataset::Running);
        match s.handle(".schema") {
            Outcome::Continue(t) => {
                assert!(t.contains("Organization"));
                assert!(t.contains("varying over Time"));
                assert!(t.contains("ordered"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn instances_shows_joe() {
        let mut s = Session::new(Dataset::Running);
        match s.handle(".instances Joe") {
            Outcome::Continue(t) => {
                assert!(t.contains("FTE/Joe"));
                assert!(t.contains("Contractor/Joe"));
                assert!(t.contains("{Jan"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn queries_produce_grids() {
        let mut s = Session::new(Dataset::Running);
        let q = "SELECT {Time.[Qtr1]} ON COLUMNS, {Organization.[FTE]} ON ROWS \
                 FROM [W] WHERE (Location.[NY], Measures.[Salary])";
        match s.handle(q) {
            Outcome::Continue(t) => assert!(t.contains("FTE"), "{t}"),
            other => panic!("{other:?}"),
        }
        // What-if through the shell.
        let q = "WITH PERSPECTIVE {(Jan)} FOR Organization DYNAMIC FORWARD VISUAL \
                 SELECT {Time.[Qtr1]} ON COLUMNS, {Organization.[FTE]} ON ROWS \
                 FROM [W] WHERE (Location.[NY], Measures.[Salary])";
        match s.handle(q) {
            Outcome::Continue(t) => assert!(t.contains("60"), "{t}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn threaded_session_matches_serial() {
        let q = "WITH PERSPECTIVE {(Feb), (Apr)} FOR Organization DYNAMIC FORWARD VISUAL \
                 SELECT {Time.[Qtr1], Time.[Qtr2]} ON COLUMNS, \
                 {Organization.[FTE], Organization.[PTE], Organization.[Contractor]} ON ROWS \
                 FROM [W] WHERE (Location.[NY], Measures.[Salary])";
        let mut serial = Session::new(Dataset::Running);
        let mut parallel = Session::new(Dataset::Running).with_threads(4);
        assert_eq!(serial.handle(q), parallel.handle(q));
    }

    #[test]
    fn prefetching_session_matches_serial() {
        let q = "WITH PERSPECTIVE {(Feb), (Apr)} FOR Organization DYNAMIC FORWARD VISUAL \
                 SELECT {Time.[Qtr1], Time.[Qtr2]} ON COLUMNS, \
                 {Organization.[FTE], Organization.[PTE], Organization.[Contractor]} ON ROWS \
                 FROM [W] WHERE (Location.[NY], Measures.[Salary])";
        let mut plain = Session::new(Dataset::Running);
        let mut hinted = Session::new(Dataset::Running).with_prefetch(3);
        assert_eq!(plain.handle(q), hinted.handle(q));
    }

    #[test]
    fn cached_session_matches_uncached() {
        let q = "WITH PERSPECTIVE {(Feb), (Apr)} FOR Organization DYNAMIC FORWARD VISUAL \
                 SELECT {Time.[Qtr1], Time.[Qtr2]} ON COLUMNS, \
                 {Organization.[FTE], Organization.[PTE], Organization.[Contractor]} ON ROWS \
                 FROM [W] WHERE (Location.[NY], Measures.[Salary])";
        let mut plain = Session::new(Dataset::Running);
        let mut cached = Session::new(Dataset::Running).with_cache(16);
        // Twice: the second cached run replays from a warm cache and
        // must still render the identical grid.
        assert_eq!(plain.handle(q), cached.handle(q));
        assert_eq!(plain.handle(q), cached.handle(q));
        match cached.handle(".cache") {
            Outcome::Continue(t) => {
                assert!(t.contains("lookups"), "{t}");
                assert!(!t.contains("cache off"), "{t}");
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            Session::new(Dataset::Running).handle(".cache"),
            Outcome::Continue(t) if t.contains("cache off")
        ));
    }

    #[test]
    fn stats_command_reports_pool_counters() {
        let mut s = Session::new(Dataset::Running);
        // Run a query so the counters are nonzero.
        s.handle(
            "SELECT {Time.[Qtr1]} ON COLUMNS, {Organization.[FTE]} ON ROWS \
             FROM [W] WHERE (Location.[NY], Measures.[Salary])",
        );
        match s.handle(".stats") {
            Outcome::Continue(t) => {
                assert!(t.contains("buffer pool:"), "{t}");
                assert!(t.contains("read errors"), "{t}");
                assert!(t.contains("retries"), "{t}");
                assert!(t.contains("write retries"), "{t}");
                assert!(t.contains("flushes:"), "{t}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn commit_reports_epoch_on_memory_backed_dataset() {
        let mut s = Session::new(Dataset::Running);
        match s.handle(".commit") {
            Outcome::Continue(t) => {
                assert!(t.contains("flushed"), "{t}");
                assert!(t.contains("no WAL"), "{t}");
            }
            other => panic!("{other:?}"),
        }
        // A clean pool has nothing staged, so no write-back transaction
        // was committed — the counter exists but stays at zero.
        match s.handle(".stats") {
            Outcome::Continue(t) => assert!(t.contains("flushes: 0 committed"), "{t}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn errors_are_messages_not_crashes() {
        let mut s = Session::new(Dataset::Running);
        match s.handle("SELECT FROM NOWHERE") {
            Outcome::Continue(t) => assert!(t.starts_with("error:")),
            other => panic!("{other:?}"),
        }
        match s.handle(".explain SELECT nonsense") {
            Outcome::Continue(t) => assert!(t.contains("error"), "{t}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn csv_command_renders_csv() {
        let mut s = Session::new(Dataset::Running);
        let q = ".csv SELECT {Time.[Qtr1]} ON COLUMNS, {Organization.[FTE]} ON ROWS \
                 FROM [W] WHERE (Location.[NY], Measures.[Salary])";
        match s.handle(q) {
            Outcome::Continue(t) => {
                assert!(t.starts_with("row,Qtr1"), "{t}");
                assert!(t.contains("FTE,"), "{t}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn explain_reports_executor_stats() {
        let mut s = Session::new(Dataset::Running);
        let q = ".explain WITH PERSPECTIVE {(Feb), (Apr)} FOR Organization DYNAMIC FORWARD \
                 SELECT {Time.[Qtr1]} ON COLUMNS, {Organization.[PTE]} ON ROWS \
                 FROM [W] WHERE (Location.[NY], Measures.[Salary])";
        match s.handle(q) {
            Outcome::Continue(t) => {
                assert!(t.contains("algebra:"), "{t}");
                assert!(t.contains("2 pass(es)"), "{t}");
                assert!(t.contains("predicted pebbles"), "{t}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn explain_reports_grid_shape() {
        let mut s = Session::new(Dataset::Running);
        let q = ".explain WITH PERSPECTIVE {(Feb)} FOR Organization STATIC \
                 SELECT {Time.[Qtr1]} ON COLUMNS, {Organization.[PTE]} ON ROWS \
                 FROM [W] WHERE (Location.[NY], Measures.[Salary])";
        match s.handle(q) {
            Outcome::Continue(t) => {
                assert!(t.contains("parsed:"));
                assert!(t.contains("1 × 1 grid"));
            }
            other => panic!("{other:?}"),
        }
    }
}
