//! Abstract syntax for the MDX subset, with a pretty-printer whose output
//! re-parses to the same tree (property-tested).

use std::fmt;

/// A full query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The paper's extension clause, if any.
    pub with: Option<WithClause>,
    /// Axis specifications in declaration order.
    pub axes: Vec<AxisSpec>,
    /// `FROM [App].[Db]` (kept verbatim; a context supplies the cube).
    pub from: Option<Vec<String>>,
    /// `WHERE (…)` slicer tuple.
    pub slicer: Option<Vec<MemberExpr>>,
}

/// The paper's extended `WITH` clause.
#[derive(Debug, Clone, PartialEq)]
pub enum WithClause {
    /// `WITH PERSPECTIVE {(Jan), (Apr)} FOR Department <semantics> <mode>`.
    Perspective {
        /// Perspective moments as member expressions.
        moments: Vec<MemberExpr>,
        /// The varying dimension's name.
        dim: String,
        /// Validity-set semantics.
        semantics: whatif_core::Semantics,
        /// Derived-cell mode (`None` ⇒ the paper's default, non-visual).
        mode: Option<whatif_core::Mode>,
    },
    /// `WITH CHANGES {(m, o, n, t), …} <mode>`.
    Changes {
        /// (member, old parent, new parent, moment) tuples. The member
        /// expression may be `.Children` etc. — anything resolving to a
        /// member set.
        tuples: Vec<ChangeTuple>,
        /// Derived-cell mode.
        mode: Option<whatif_core::Mode>,
    },
}

/// One tuple of the positive-change relation.
#[derive(Debug, Clone, PartialEq)]
pub struct ChangeTuple {
    /// `m` — the member(s) being reclassified.
    pub member: MemberExpr,
    /// `o` — the claimed current parent.
    pub old_parent: MemberExpr,
    /// `n` — the hypothetical new parent.
    pub new_parent: MemberExpr,
    /// `t` — the moment.
    pub at: MemberExpr,
}

/// Which presentation axis a set lands on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// `ON COLUMNS`
    Columns,
    /// `ON ROWS`
    Rows,
    /// `ON PAGES`
    Pages,
}

impl Axis {
    /// MDX keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            Axis::Columns => "COLUMNS",
            Axis::Rows => "ROWS",
            Axis::Pages => "PAGES",
        }
    }
}

/// One axis clause.
#[derive(Debug, Clone, PartialEq)]
pub struct AxisSpec {
    /// The set expression.
    pub set: SetExpr,
    /// `DIMENSION PROPERTIES [D]` names to report per row.
    pub properties: Vec<String>,
    /// The target axis.
    pub axis: Axis,
}

/// Descendants flags (Essbase subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DescFlag {
    /// Exactly the requested relative depth.
    SelfOnly,
    /// The requested depth and everything below (`SELF_AND_AFTER`).
    SelfAndAfter,
}

/// Set-valued expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum SetExpr {
    /// `{e₁, e₂, …}` — concatenation of element sets.
    Braces(Vec<SetExpr>),
    /// `(m₁, m₂, …)` — a tuple combining members of different dimensions.
    Tuple(Vec<MemberExpr>),
    /// `CrossJoin(a, b)`.
    CrossJoin(Box<SetExpr>, Box<SetExpr>),
    /// `Union(a, b)` (duplicates removed, first occurrence kept).
    Union(Box<SetExpr>, Box<SetExpr>),
    /// `Head(a, n)`.
    Head(Box<SetExpr>, u64),
    /// `Tail(a, n)`.
    Tail(Box<SetExpr>, u64),
    /// `Filter(a, <member> <op> <number>)` — keeps the tuples whose cell
    /// (tuple context + the condition's member coordinates, everything
    /// else rolled up) satisfies the comparison; ⊥ never satisfies
    /// (Section 4.1's value predicates, e.g. "sales over $1000 in Jan").
    Filter(Box<SetExpr>, FilterCond),
    /// A single member expression used as a set.
    Ref(MemberExpr),
}

/// The condition of a `Filter`.
#[derive(Debug, Clone, PartialEq)]
pub struct FilterCond {
    /// Coordinates pinned for the measurement (often just a measure).
    pub members: Vec<MemberExpr>,
    /// `>`, `>=`, `<`, `<=`, `=`, `<>`.
    pub op: String,
    /// The threshold.
    pub value: f64,
}

/// Member-valued (or member-set-valued) expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum MemberExpr {
    /// A dotted path of (possibly bracketed) names:
    /// `Organization.[FTE].[Joe]`.
    Path(Vec<String>),
    /// `<m>.Children` — children of a member, or the contents of a named
    /// set (the Essbase idiom the Fig. 10 queries use).
    Children(Box<MemberExpr>),
    /// `<path>.MEMBERS` — all members at the level the path names
    /// (`Location.Region.State.MEMBERS` ⇒ level-2 members of Location).
    Members(Box<MemberExpr>),
    /// `<m>.Levels(n).Members` — members at level `n`, counting 0 = leaf
    /// (the Essbase convention Fig. 10 relies on).
    LevelsMembers(Box<MemberExpr>, u32),
    /// `Descendants(m, depth, flag)`.
    Descendants(Box<MemberExpr>, u32, DescFlag),
}

impl MemberExpr {
    /// Convenience: a single-segment path.
    pub fn name(s: &str) -> MemberExpr {
        MemberExpr::Path(vec![s.to_string()])
    }
}

fn fmt_name(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    // Bracket anything that isn't a plain identifier.
    let plain = !s.is_empty()
        && s.chars()
            .next()
            .map(|c| c.is_alphabetic() || c == '_')
            .unwrap_or(false)
        && s.chars().all(|c| c.is_alphanumeric() || c == '_')
        && !is_keyword(s);
    if plain {
        f.write_str(s)
    } else {
        // A literal ']' inside a bracketed name is escaped by doubling,
        // per MDX convention; the lexer reverses it.
        write!(f, "[{}]", s.replace(']', "]]"))
    }
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s.to_ascii_uppercase().as_str(),
        "SELECT"
            | "FROM"
            | "WHERE"
            | "ON"
            | "WITH"
            | "PERSPECTIVE"
            | "CHANGES"
            | "FOR"
            | "STATIC"
            | "DYNAMIC"
            | "FORWARD"
            | "BACKWARD"
            | "EXTENDED"
            | "VISUAL"
            | "NONVISUAL"
            | "COLUMNS"
            | "ROWS"
            | "PAGES"
            | "DIMENSION"
            | "PROPERTIES"
            | "CROSSJOIN"
            | "UNION"
            | "HEAD"
            | "TAIL"
            | "FILTER"
            | "CHILDREN"
            | "MEMBERS"
            | "LEVELS"
            | "DESCENDANTS"
            | "SELF_AND_AFTER"
            | "SELF"
    )
}

impl fmt::Display for MemberExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemberExpr::Path(segs) => {
                for (i, s) in segs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(".")?;
                    }
                    fmt_name(f, s)?;
                }
                Ok(())
            }
            MemberExpr::Children(m) => write!(f, "{m}.Children"),
            MemberExpr::Members(m) => write!(f, "{m}.MEMBERS"),
            MemberExpr::LevelsMembers(m, n) => write!(f, "{m}.Levels({n}).Members"),
            MemberExpr::Descendants(m, n, flag) => match flag {
                DescFlag::SelfOnly => write!(f, "Descendants({m}, {n})"),
                DescFlag::SelfAndAfter => {
                    write!(f, "Descendants({m}, {n}, SELF_AND_AFTER)")
                }
            },
        }
    }
}

impl fmt::Display for SetExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SetExpr::Braces(items) => {
                f.write_str("{")?;
                for (i, e) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{e}")?;
                }
                f.write_str("}")
            }
            SetExpr::Tuple(ms) => {
                f.write_str("(")?;
                for (i, m) in ms.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{m}")?;
                }
                f.write_str(")")
            }
            SetExpr::CrossJoin(a, b) => write!(f, "CrossJoin({a}, {b})"),
            SetExpr::Union(a, b) => write!(f, "Union({a}, {b})"),
            SetExpr::Head(a, n) => write!(f, "Head({a}, {n})"),
            SetExpr::Tail(a, n) => write!(f, "Tail({a}, {n})"),
            SetExpr::Filter(a, cond) => {
                write!(f, "Filter({a}, ")?;
                if cond.members.len() == 1 {
                    write!(f, "{}", cond.members[0])?;
                } else {
                    f.write_str("(")?;
                    for (i, m) in cond.members.iter().enumerate() {
                        if i > 0 {
                            f.write_str(", ")?;
                        }
                        write!(f, "{m}")?;
                    }
                    f.write_str(")")?;
                }
                write!(f, " {} {})", cond.op, cond.value)
            }
            SetExpr::Ref(m) => write!(f, "{m}"),
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(w) = &self.with {
            match w {
                WithClause::Perspective {
                    moments,
                    dim,
                    semantics,
                    mode,
                } => {
                    f.write_str("WITH PERSPECTIVE {")?;
                    for (i, m) in moments.iter().enumerate() {
                        if i > 0 {
                            f.write_str(", ")?;
                        }
                        write!(f, "({m})")?;
                    }
                    f.write_str("} FOR ")?;
                    fmt_name(f, dim)?;
                    write!(f, " {semantics}")?;
                    if let Some(m) = mode {
                        write!(f, " {m}")?;
                    }
                    f.write_str("\n")?;
                }
                WithClause::Changes { tuples, mode } => {
                    f.write_str("WITH CHANGES {")?;
                    for (i, t) in tuples.iter().enumerate() {
                        if i > 0 {
                            f.write_str(", ")?;
                        }
                        write!(
                            f,
                            "({}, {}, {}, {})",
                            t.member, t.old_parent, t.new_parent, t.at
                        )?;
                    }
                    f.write_str("}")?;
                    if let Some(m) = mode {
                        write!(f, " {m}")?;
                    }
                    f.write_str("\n")?;
                }
            }
        }
        f.write_str("SELECT ")?;
        for (i, a) in self.axes.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{}", a.set)?;
            if !a.properties.is_empty() {
                f.write_str(" DIMENSION PROPERTIES ")?;
                for (j, p) in a.properties.iter().enumerate() {
                    if j > 0 {
                        f.write_str(", ")?;
                    }
                    fmt_name(f, p)?;
                }
            }
            write!(f, " ON {}", a.axis.keyword())?;
        }
        if let Some(from) = &self.from {
            f.write_str(" FROM ")?;
            for (i, s) in from.iter().enumerate() {
                if i > 0 {
                    f.write_str(".")?;
                }
                write!(f, "[{s}]")?;
            }
        }
        if let Some(slicer) = &self.slicer {
            f.write_str(" WHERE (")?;
            for (i, m) in slicer.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{m}")?;
            }
            f.write_str(")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_member_paths() {
        let m = MemberExpr::Path(vec!["Organization".into(), "FTE".into(), "Joe".into()]);
        assert_eq!(m.to_string(), "Organization.FTE.Joe");
        let m = MemberExpr::Path(vec!["BU Version_1".into()]);
        assert_eq!(m.to_string(), "[BU Version_1]");
        // Keyword-looking names get bracketed.
        let m = MemberExpr::Path(vec!["Union".into()]);
        assert_eq!(m.to_string(), "[Union]");
    }

    #[test]
    fn display_functions() {
        let m = MemberExpr::Descendants(
            Box::new(MemberExpr::name("Period")),
            1,
            DescFlag::SelfAndAfter,
        );
        assert_eq!(m.to_string(), "Descendants(Period, 1, SELF_AND_AFTER)");
        let s = SetExpr::Head(
            Box::new(SetExpr::Ref(MemberExpr::Children(Box::new(
                MemberExpr::name("Set1"),
            )))),
            50,
        );
        assert_eq!(s.to_string(), "Head(Set1.Children, 50)");
    }
}
