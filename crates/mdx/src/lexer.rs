//! Tokenizer for the MDX subset.
//!
//! Keywords are case-insensitive; `[bracketed names]` may contain any
//! character except `]` (Essbase names like
//! `EmployeesWithAtleastOneMove-Set1` need this).

use crate::error::MdxError;
use crate::Result;

/// One token with its byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Byte offset in the source.
    pub at: usize,
    /// The token kind/payload.
    pub kind: Tok,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Bare identifier (`Jan`, `CrossJoin`, `SELF_AND_AFTER`).
    Ident(String),
    /// `[bracketed name]` (brackets stripped).
    Bracketed(String),
    /// Unsigned integer literal.
    Number(u64),
    /// Decimal literal (`0.93`).
    Float(f64),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// A comparison operator: `>`, `>=`, `<`, `<=`, `=`, `<>`.
    Cmp(String),
    /// End of input.
    Eof,
}

impl Tok {
    /// The identifier text, uppercased, if this is a bare identifier.
    pub fn keyword(&self) -> Option<String> {
        match self {
            Tok::Ident(s) => Some(s.to_ascii_uppercase()),
            _ => None,
        }
    }
}

/// Tokenizes a query.
pub fn lex(src: &str) -> Result<Vec<Token>> {
    // Work over char boundaries so multi-byte input can't cause
    // mid-character slicing (found by the fuzz property test).
    let chars: Vec<(usize, char)> = src.char_indices().collect();
    let byte_at = |k: usize| -> usize { chars.get(k).map(|&(b, _)| b).unwrap_or(src.len()) };
    let mut out = Vec::new();
    let mut i = 0usize; // index into `chars`
    while i < chars.len() {
        let (at, c) = chars[i];
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '{' => {
                out.push(Token {
                    at,
                    kind: Tok::LBrace,
                });
                i += 1;
            }
            '}' => {
                out.push(Token {
                    at,
                    kind: Tok::RBrace,
                });
                i += 1;
            }
            '(' => {
                out.push(Token {
                    at,
                    kind: Tok::LParen,
                });
                i += 1;
            }
            ')' => {
                out.push(Token {
                    at,
                    kind: Tok::RParen,
                });
                i += 1;
            }
            ',' => {
                out.push(Token {
                    at,
                    kind: Tok::Comma,
                });
                i += 1;
            }
            '.' => {
                out.push(Token { at, kind: Tok::Dot });
                i += 1;
            }
            '>' | '<' | '=' => {
                let mut op = String::new();
                op.push(c);
                i += 1;
                if let Some(&(_, next)) = chars.get(i) {
                    if (c == '>' && next == '=') || (c == '<' && (next == '=' || next == '>')) {
                        op.push(next);
                        i += 1;
                    }
                }
                out.push(Token {
                    at,
                    kind: Tok::Cmp(op),
                });
            }
            '[' => {
                // `]]` inside brackets is an escaped literal `]`; a
                // lone `]` terminates the name.
                let mut name = String::new();
                let mut j = i + 1;
                loop {
                    if j >= chars.len() {
                        return Err(MdxError::Lex {
                            at,
                            msg: "unterminated '['".into(),
                        });
                    }
                    let cc = chars[j].1;
                    if cc == ']' {
                        if j + 1 < chars.len() && chars[j + 1].1 == ']' {
                            name.push(']');
                            j += 2;
                        } else {
                            j += 1;
                            break;
                        }
                    } else {
                        name.push(cc);
                        j += 1;
                    }
                }
                out.push(Token {
                    at,
                    kind: Tok::Bracketed(name),
                });
                i = j;
            }
            '0'..='9' => {
                let mut j = i;
                while j < chars.len() && chars[j].1.is_ascii_digit() {
                    j += 1;
                }
                // A dot followed by a digit makes it a decimal literal;
                // otherwise the dot is a path separator.
                if j + 1 < chars.len() && chars[j].1 == '.' && chars[j + 1].1.is_ascii_digit() {
                    j += 1;
                    while j < chars.len() && chars[j].1.is_ascii_digit() {
                        j += 1;
                    }
                    let text = &src[at..byte_at(j)];
                    let v: f64 = text.parse().map_err(|_| MdxError::Lex {
                        at,
                        msg: "bad decimal literal".into(),
                    })?;
                    out.push(Token {
                        at,
                        kind: Tok::Float(v),
                    });
                } else {
                    let text = &src[at..byte_at(j)];
                    let n: u64 = text.parse().map_err(|_| MdxError::Lex {
                        at,
                        msg: "number too large".into(),
                    })?;
                    out.push(Token {
                        at,
                        kind: Tok::Number(n),
                    });
                }
                i = j;
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut j = i;
                while j < chars.len() {
                    let cc = chars[j].1;
                    if cc.is_alphanumeric() || cc == '_' || cc == '-' {
                        j += 1;
                    } else {
                        break;
                    }
                }
                out.push(Token {
                    at,
                    kind: Tok::Ident(src[at..byte_at(j)].to_string()),
                });
                i = j;
            }
            other => {
                return Err(MdxError::Lex {
                    at,
                    msg: format!("unexpected character {other:?}"),
                });
            }
        }
    }
    out.push(Token {
        at: src.len(),
        kind: Tok::Eof,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_fig10_fragment() {
        let toks = lex("WITH perspective {(Jan), (Jul)} for Department STATIC").unwrap();
        let kinds: Vec<&Tok> = toks.iter().map(|t| &t.kind).collect();
        assert!(matches!(kinds[0], Tok::Ident(s) if s == "WITH"));
        assert!(matches!(kinds[2], Tok::LBrace));
        assert!(matches!(kinds[3], Tok::LParen));
        assert!(matches!(kinds[4], Tok::Ident(s) if s == "Jan"));
        assert_eq!(*kinds.last().unwrap(), &Tok::Eof);
    }

    #[test]
    fn bracketed_names_keep_dashes_and_spaces() {
        let toks = lex("[EmployeesWithAtleastOneMove-Set1].[BU Version_1]").unwrap();
        assert!(
            matches!(&toks[0].kind, Tok::Bracketed(s) if s == "EmployeesWithAtleastOneMove-Set1")
        );
        assert!(matches!(&toks[1].kind, Tok::Dot));
        assert!(matches!(&toks[2].kind, Tok::Bracketed(s) if s == "BU Version_1"));
    }

    #[test]
    fn doubled_bracket_escapes_literal_bracket() {
        let toks = lex("[a]]b].[]]]").unwrap();
        assert!(matches!(&toks[0].kind, Tok::Bracketed(s) if s == "a]b"));
        assert!(matches!(&toks[1].kind, Tok::Dot));
        assert!(matches!(&toks[2].kind, Tok::Bracketed(s) if s == "]"));
        assert!(lex("[a]]").is_err(), "trailing ]] leaves the name open");
    }

    #[test]
    fn numbers_and_parens() {
        let toks = lex("Levels(0).Members").unwrap();
        assert!(matches!(&toks[0].kind, Tok::Ident(s) if s == "Levels"));
        assert!(matches!(&toks[1].kind, Tok::LParen));
        assert!(matches!(&toks[2].kind, Tok::Number(0)));
    }

    #[test]
    fn errors_carry_positions() {
        let err = lex("abc [def").unwrap_err();
        assert!(matches!(err, MdxError::Lex { at: 4, .. }));
        let err = lex("a % b").unwrap_err();
        assert!(matches!(err, MdxError::Lex { at: 2, .. }));
    }

    #[test]
    fn comparison_operators() {
        let toks = lex("a > 1 b >= 2 c <> 3 d <= 4 e = 5").unwrap();
        let ops: Vec<String> = toks
            .iter()
            .filter_map(|t| match &t.kind {
                Tok::Cmp(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(ops, vec![">", ">=", "<>", "<=", "="]);
    }

    #[test]
    fn identifiers_allow_dashes_inside() {
        let toks = lex("Set-1").unwrap();
        assert!(matches!(&toks[0].kind, Tok::Ident(s) if s == "Set-1"));
    }
}
