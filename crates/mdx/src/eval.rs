//! Query evaluation: extended MDX → scenario → perspective cube → grid.

use crate::ast::{Axis, Query, SetExpr, WithClause};
use crate::error::MdxError;
use crate::grid::Grid;
use crate::parser::parse;
use crate::resolve::{Atom, NamedSets, Resolver, Tuple};
use crate::Result;
use olap_cube::{CellEvaluator, Cube, Sel};
use olap_model::{AxisSlot, DimensionId, MemberId, Schema};
use whatif_core::{Change, Mode, Scenario, Strategy, WhatIfResult};

/// Everything a query needs besides its text: the cube, named sets, and
/// the execution strategy for what-if clauses.
pub struct QueryContext<'a> {
    /// The warehouse cube.
    pub cube: &'a Cube,
    /// Named sets (`[EmployeesWithAtleastOneMove-Set1]`, …).
    pub named_sets: NamedSets,
    /// Execution strategy for perspective clauses.
    pub strategy: Strategy,
    /// Restrict perspective execution to the varying-dimension slots the
    /// query touches (Essbase-style retrieval). On by default; turn off
    /// to force full perspective-cube materialization.
    pub scoped_retrieval: bool,
    /// Parallelism degree for the chunked executor: `1` (the default)
    /// runs serially; `n ≥ 2` fans independent slices out across worker
    /// threads (see [`whatif_core::execute_chunked_threaded`]).
    pub threads: usize,
    /// Prefetch lookahead K for the chunked executor: the next K chunk
    /// ids of each processing sequence are hinted to the buffer pool's
    /// I/O workers (`0`, the default, disables hinting). Only has an
    /// effect when the cube's pool runs I/O workers.
    pub prefetch: usize,
    /// Scenario-delta cache shared across this context's queries: a
    /// negative-scenario query re-merges only the chunks whose merge
    /// components changed since the cache last saw them (DESIGN.md §10).
    /// Setting it forces full materialization (cached chunks are whole
    /// output chunks, so `scoped_retrieval` is bypassed for cached
    /// queries). `None` (the default) is bit-identical to today.
    pub cache: Option<std::sync::Arc<whatif_core::ScenarioCache>>,
    /// Peak-memory ceiling in cells for what-if execution (`0` =
    /// unlimited): a scenario whose predicted pebble footprint exceeds
    /// it is rejected with `BudgetExceeded` before reading any chunk.
    /// This is the per-session budget the multi-tenant server enforces.
    pub budget_cells: u64,
    /// Inner-loop implementation for the chunked executor: run kernels
    /// (the default) or the bit-identical scalar oracle (`--kernel`).
    pub kernel: whatif_core::KernelKind,
    /// Cooperative wall-clock deadline for what-if execution (`None` =
    /// unlimited): the chunked executor checks it at pass and slice
    /// boundaries and aborts with `DeadlineExceeded`, leaving the
    /// session and cache intact. This is the per-request deadline the
    /// multi-tenant server enforces (`--deadline-ms`, `.deadline`).
    pub deadline: Option<std::time::Instant>,
}

impl<'a> QueryContext<'a> {
    /// A context with no named sets and the default (chunked + pebbling)
    /// strategy.
    pub fn new(cube: &'a Cube) -> Self {
        QueryContext {
            cube,
            named_sets: NamedSets::new(),
            strategy: Strategy::Chunked(whatif_core::OrderPolicy::Pebbling),
            scoped_retrieval: true,
            threads: 1,
            prefetch: 0,
            cache: None,
            budget_cells: 0,
            kernel: whatif_core::KernelKind::default(),
            deadline: None,
        }
    }

    /// Registers a named set of members of one dimension.
    pub fn define_set(&mut self, name: &str, dim: DimensionId, members: &[MemberId]) {
        let schema = self.cube.schema();
        let sets = NamedSets::new();
        let r = Resolver::new(schema, &sets);
        let atoms: Vec<Atom> = members.iter().map(|&m| r.atom_for_member(dim, m)).collect();
        self.named_sets.insert(name.to_string(), atoms);
    }
}

/// Parses and evaluates a query.
pub fn execute(ctx: &QueryContext<'_>, src: &str) -> Result<Grid> {
    let query = parse(src)?;
    evaluate(ctx, &query)
}

/// Like [`execute`], also returning the what-if executor's report (pass
/// count, chunks read, predicted pebbles, …) when a `WITH` clause ran.
pub fn execute_with_report(
    ctx: &QueryContext<'_>,
    src: &str,
) -> Result<(Grid, Option<whatif_core::ExecReport>)> {
    let query = parse(src)?;
    evaluate_full(ctx, &query)
}

/// Evaluates a parsed query.
pub fn evaluate(ctx: &QueryContext<'_>, query: &Query) -> Result<Grid> {
    evaluate_full(ctx, query).map(|(g, _)| g)
}

/// Evaluates a parsed query, returning the grid plus the scenario
/// executor's report when one ran.
pub fn evaluate_full(
    ctx: &QueryContext<'_>,
    query: &Query,
) -> Result<(Grid, Option<whatif_core::ExecReport>)> {
    // 1. Compile the what-if clause. Positive scenarios apply up front
    //    (their axes may reference new instances); negative scenarios
    //    apply after axis resolution so execution can be scoped to the
    //    slots the query touches.
    let scenario = match &query.with {
        None => None,
        Some(clause) => Some(compile_with(ctx, clause)?),
    };
    let mut whatif: Option<WhatIfResult> = None;
    if let Some(s @ Scenario::Positive { .. }) = &scenario {
        whatif = Some(whatif_core::apply_opts(
            ctx.cube,
            s,
            &ctx.strategy,
            None,
            whatif_core::ExecOpts {
                threads: ctx.threads,
                prefetch: ctx.prefetch,
                // Positive scenarios rebuild the axis via split(), which
                // the chunk cache does not cover.
                cache: None,
                budget_cells: ctx.budget_cells,
                kernel: ctx.kernel,
                deadline: ctx.deadline,
            },
        )?);
    }
    let schema_arc = match &whatif {
        Some(r) => std::sync::Arc::clone(&r.schema),
        None => std::sync::Arc::clone(ctx.cube.schema()),
    };
    let schema: &Schema = &schema_arc;
    let resolver = Resolver::new(schema, &ctx.named_sets);

    // 2. Resolve axes. Filter conditions evaluate against the input cube
    //    (Theorem 4.1: the what-if operators apply to the *result* of the
    //    core MDX query, which includes its filters).
    // Filters must evaluate against the cube whose schema the atoms were
    // resolved on: the split output for positive scenarios, the input
    // otherwise.
    let filter_cube: &Cube = match &whatif {
        Some(r) => &r.cube,
        None => ctx.cube,
    };
    let mut columns: Option<Vec<Tuple>> = None;
    let mut rows: Option<Vec<Tuple>> = None;
    let mut properties: Vec<String> = Vec::new();
    for spec in &query.axes {
        let tuples = eval_set(&resolver, filter_cube, &spec.set)?;
        match spec.axis {
            Axis::Columns => columns = Some(tuples),
            Axis::Rows => {
                rows = Some(tuples);
                properties = spec.properties.clone();
            }
            Axis::Pages => {
                return Err(MdxError::Semantic(
                    "ON PAGES is not supported; fold pages into rows".into(),
                ))
            }
        }
    }
    let columns = columns.ok_or_else(|| MdxError::Semantic("missing ON COLUMNS".into()))?;
    // A 1-axis query is fine: a single pseudo-row.
    let rows = rows.unwrap_or_else(|| vec![Vec::new()]);

    // 3. Resolve the slicer.
    let mut base: Vec<Sel> = (0..schema.dim_count())
        .map(|_| Sel::Member(MemberId::ROOT))
        .collect();
    if let Some(slicer) = &query.slicer {
        for expr in slicer {
            let atoms = resolver.member_set(expr)?;
            let atom = atoms
                .into_iter()
                .next()
                .ok_or_else(|| MdxError::Unresolved(expr.to_string()))?;
            base[atom.dim.index()] = atom.sel;
        }
    }

    // 3½. Apply a negative scenario, scoped to the touched slots. With a
    // scenario cache, scoping is skipped: cached entries are whole
    // output chunks, and a scoped run would produce (and consult)
    // partial ones. Full materialization makes consecutive edited
    // queries share work — the very case the cache exists for.
    if let Some(s @ Scenario::Negative(_)) = &scenario {
        let scope = if ctx.scoped_retrieval && ctx.cache.is_none() {
            compute_scope(schema, s.dim(), &columns, &rows, &base)
        } else {
            None
        };
        whatif = Some(whatif_core::apply_opts(
            ctx.cube,
            s,
            &ctx.strategy,
            scope.as_deref(),
            whatif_core::ExecOpts {
                threads: ctx.threads,
                prefetch: ctx.prefetch,
                cache: ctx.cache.clone(),
                budget_cells: ctx.budget_cells,
                kernel: ctx.kernel,
                deadline: ctx.deadline,
            },
        )?);
    }

    // 4. Evaluate cells.
    let value = |sels: &[Sel]| -> Result<olap_store::CellValue> {
        match &whatif {
            Some(r) => Ok(r.value(ctx.cube, sels)?),
            None => Ok(CellEvaluator::new(ctx.cube).value(sels)?),
        }
    };
    let mut cells = Vec::with_capacity(rows.len());
    for row in &rows {
        let mut line = Vec::with_capacity(columns.len());
        for col in &columns {
            let mut sels = base.clone();
            for a in row.iter().chain(col.iter()) {
                sels[a.dim.index()] = a.sel;
            }
            line.push(value(&sels)?);
        }
        cells.push(line);
    }

    // 5. Row properties (e.g. DIMENSION PROPERTIES [Department]: report
    // the classification path of the row's varying-dimension coordinate).
    let row_properties: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            properties
                .iter()
                .map(|p| property_value(schema, row, p))
                .collect()
        })
        .collect();

    let report = whatif.as_ref().map(|r| r.report.clone());
    Ok((
        Grid {
            columns: columns.iter().map(label_of).collect(),
            rows: rows.iter().map(label_of).collect(),
            cells,
            row_properties,
            property_names: properties,
        },
        report,
    ))
}

/// The varying-dimension slots a query can touch, when determinable:
/// every cell must pin the dimension through its row, column, or the
/// slicer; otherwise (cells fall back to the ROOT rollup) returns `None`
/// and execution stays unscoped.
fn compute_scope(
    schema: &Schema,
    dim: DimensionId,
    columns: &[Tuple],
    rows: &[Tuple],
    base: &[Sel],
) -> Option<Vec<u32>> {
    let covered = |tuples: &[Tuple]| -> bool {
        !tuples.is_empty() && tuples.iter().all(|t| t.iter().any(|a| a.dim == dim))
    };
    let base_sel = base.get(dim.index()).copied();
    let slicer_pinned = !matches!(base_sel, Some(Sel::Member(MemberId::ROOT)) | None);
    if !covered(rows) && !covered(columns) && !slicer_pinned {
        return None;
    }
    let mut slots: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();
    let mut add_sel = |sel: Sel| match sel {
        Sel::Slot(s) => {
            slots.insert(s);
        }
        Sel::Member(m) => {
            for s in schema.slots_under(dim, m) {
                slots.insert(s.0);
            }
        }
    };
    for t in rows.iter().chain(columns.iter()) {
        for a in t.iter().filter(|a| a.dim == dim) {
            add_sel(a.sel);
        }
    }
    if slicer_pinned {
        if let Some(sel) = base_sel {
            add_sel(sel);
        }
    }
    Some(slots.into_iter().collect())
}

fn label_of(tuple: &Tuple) -> String {
    if tuple.is_empty() {
        return "*".to_string();
    }
    tuple
        .iter()
        .map(|a| a.label.clone())
        .collect::<Vec<_>>()
        .join(" / ")
}

/// The value of a `DIMENSION PROPERTIES` column for one row: the parent
/// path of the row's coordinate on the named dimension (or on any varying
/// dimension when the name doesn't match a dimension — Essbase property
/// names like `Department` name the *level*, not the dimension).
fn property_value(schema: &Schema, row: &Tuple, prop: &str) -> String {
    let target_dim = schema.find_dimension(prop);
    for a in row {
        let matches = match target_dim {
            Some(d) => a.dim == d,
            None => schema.is_varying(a.dim),
        };
        if !matches {
            continue;
        }
        match a.sel {
            Sel::Slot(s) if schema.is_varying(a.dim) => {
                let v = schema.varying(a.dim).expect("varying");
                let inst = v.instance(olap_model::InstanceId(s));
                let d = schema.dim(a.dim);
                return inst
                    .path
                    .iter()
                    .map(|&m| d.member_name(m))
                    .collect::<Vec<_>>()
                    .join("/");
            }
            Sel::Slot(s) => {
                let leaf = schema.slot_member(a.dim, AxisSlot(s));
                return path_of(schema, a.dim, leaf);
            }
            Sel::Member(m) => {
                if schema.is_varying(a.dim) && schema.dim(a.dim).is_leaf(m) {
                    // A member selector spans instances: list every
                    // classification it had.
                    let v = schema.varying(a.dim).expect("varying");
                    let d = schema.dim(a.dim);
                    return v
                        .instances_of(m)
                        .iter()
                        .map(|&i| {
                            v.instance(i)
                                .path
                                .iter()
                                .map(|&p| d.member_name(p))
                                .collect::<Vec<_>>()
                                .join("/")
                        })
                        .collect::<Vec<_>>()
                        .join(", ");
                }
                return path_of(schema, a.dim, m);
            }
        }
    }
    String::new()
}

fn path_of(schema: &Schema, dim: DimensionId, m: MemberId) -> String {
    let d = schema.dim(dim);
    let mut segs: Vec<&str> = d
        .ancestors(m)
        .into_iter()
        .filter(|&p| p != MemberId::ROOT)
        .map(|p| d.member_name(p))
        .collect();
    segs.reverse();
    segs.join("/")
}

/// Compiles the extended `WITH` clause into a scenario (public so shells
/// and optimizers can inspect the plan without executing it).
pub fn compile_with(ctx: &QueryContext<'_>, clause: &WithClause) -> Result<Scenario> {
    let schema = ctx.cube.schema();
    let resolver = Resolver::new(schema, &ctx.named_sets);
    match clause {
        WithClause::Perspective {
            moments,
            dim,
            semantics,
            mode,
        } => {
            let dim_id = schema
                .find_dimension(dim)
                .ok_or_else(|| MdxError::Unresolved(dim.clone()))?;
            let varying = schema
                .varying(dim_id)
                .ok_or_else(|| MdxError::Semantic(format!("{dim} is not a varying dimension")))?;
            let param = varying.parameter_dim();
            let mut p = Vec::with_capacity(moments.len());
            for m in moments {
                p.push(resolver.moment(m, param)?);
            }
            Ok(Scenario::negative(
                dim_id,
                p,
                *semantics,
                mode.unwrap_or(Mode::NonVisual),
            ))
        }
        WithClause::Changes { tuples, mode } => {
            if tuples.is_empty() {
                return Err(MdxError::Semantic("WITH CHANGES needs tuples".into()));
            }
            // The varying dimension is the one the new parents live in.
            let first_parent = resolver.member_set(&tuples[0].new_parent)?;
            let dim_id = first_parent
                .first()
                .ok_or_else(|| MdxError::Unresolved(tuples[0].new_parent.to_string()))?
                .dim;
            let varying = schema.varying(dim_id).ok_or_else(|| {
                MdxError::Semantic(format!(
                    "{} is not a varying dimension",
                    schema.dim(dim_id).name()
                ))
            })?;
            let param = varying.parameter_dim();
            let mut changes = Vec::new();
            for t in tuples {
                let old_parent = resolver.single_in_dim(&t.old_parent, dim_id)?;
                let new_parent = resolver.single_in_dim(&t.new_parent, dim_id)?;
                let at = resolver.moment(&t.at, param)?;
                // The member part may be a set (e.g. `[FTE].children`):
                // "the change applies to all children of FTE".
                for atom in resolver.member_set(&t.member)? {
                    if atom.dim != dim_id {
                        continue;
                    }
                    let member = match atom.sel {
                        Sel::Member(m) => m,
                        Sel::Slot(s) => schema.slot_member(dim_id, AxisSlot(s)),
                    };
                    changes.push(Change {
                        member,
                        old_parent: Some(old_parent),
                        new_parent,
                        at,
                    });
                }
            }
            Ok(Scenario::positive(
                dim_id,
                changes,
                mode.unwrap_or(Mode::NonVisual),
            ))
        }
    }
}

/// Evaluates a set expression to axis tuples.
fn eval_set(resolver: &Resolver<'_>, cube: &Cube, set: &SetExpr) -> Result<Vec<Tuple>> {
    Ok(match set {
        SetExpr::Braces(items) => {
            let mut out = Vec::new();
            for e in items {
                out.extend(eval_set(resolver, cube, e)?);
            }
            out
        }
        SetExpr::Tuple(ms) => {
            // One tuple combining one member per dimension; set-valued
            // entries cross-join positionally.
            let mut tuples: Vec<Tuple> = vec![Vec::new()];
            for m in ms {
                let atoms = resolver.member_set(m)?;
                let mut next = Vec::with_capacity(tuples.len() * atoms.len().max(1));
                for t in &tuples {
                    for a in &atoms {
                        let mut t2 = t.clone();
                        t2.push(a.clone());
                        next.push(t2);
                    }
                }
                tuples = next;
            }
            tuples
        }
        SetExpr::CrossJoin(a, b) => {
            let left = eval_set(resolver, cube, a)?;
            let right = eval_set(resolver, cube, b)?;
            let mut out = Vec::with_capacity(left.len() * right.len());
            for l in &left {
                for r in &right {
                    let mut t = l.clone();
                    t.extend(r.iter().cloned());
                    out.push(t);
                }
            }
            out
        }
        SetExpr::Union(a, b) => {
            let mut out = eval_set(resolver, cube, a)?;
            for t in eval_set(resolver, cube, b)? {
                if !out.contains(&t) {
                    out.push(t);
                }
            }
            out
        }
        SetExpr::Head(a, n) => {
            let mut out = eval_set(resolver, cube, a)?;
            out.truncate(*n as usize);
            out
        }
        SetExpr::Tail(a, n) => {
            let mut out = eval_set(resolver, cube, a)?;
            let keep = (*n as usize).min(out.len());
            out.drain(..out.len() - keep);
            out
        }
        SetExpr::Filter(a, cond) => {
            let tuples = eval_set(resolver, cube, a)?;
            // Resolve the condition's coordinates once.
            let mut pinned: Vec<Atom> = Vec::new();
            for m in &cond.members {
                let atoms = resolver.member_set(m)?;
                let atom = atoms
                    .into_iter()
                    .next()
                    .ok_or_else(|| MdxError::Unresolved(m.to_string()))?;
                pinned.push(atom);
            }
            let ev = CellEvaluator::new(cube);
            let mut out = Vec::new();
            for t in tuples {
                let mut sels: Vec<Sel> = (0..cube.schema().dim_count())
                    .map(|_| Sel::Member(MemberId::ROOT))
                    .collect();
                for a in t.iter().chain(pinned.iter()) {
                    sels[a.dim.index()] = a.sel;
                }
                let v = ev.value(&sels)?;
                let keep = match v.as_f64() {
                    None => false, // ⊥ never satisfies (Section 4.1)
                    Some(x) => match cond.op.as_str() {
                        ">" => x > cond.value,
                        ">=" => x >= cond.value,
                        "<" => x < cond.value,
                        "<=" => x <= cond.value,
                        "=" => x == cond.value,
                        "<>" => x != cond.value,
                        other => {
                            return Err(MdxError::Semantic(format!("unknown comparison {other:?}")))
                        }
                    },
                };
                if keep {
                    out.push(t);
                }
            }
            out
        }
        SetExpr::Ref(m) => resolver
            .member_set(m)?
            .into_iter()
            .map(|a| vec![a])
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use olap_model::{DimensionSpec, SchemaBuilder};
    use olap_store::CellValue;
    use std::sync::Arc;

    /// The running example: Org (varying) × Time (2 quarters of 3) ×
    /// Measures {Salary}; salary 10/month/instance.
    fn fixture() -> Cube {
        let schema = Arc::new(
            SchemaBuilder::new()
                .dimension(DimensionSpec::new("Organization").tree(&[
                    ("FTE", &["Joe", "Lisa"][..]),
                    ("PTE", &["Tom"]),
                    ("Contractor", &["Jane"]),
                ]))
                .dimension(DimensionSpec::new("Time").ordered().tree(&[
                    ("Q1", &["Jan", "Feb", "Mar"][..]),
                    ("Q2", &["Apr", "May", "Jun"]),
                ]))
                .dimension(
                    DimensionSpec::new("Measures")
                        .measures()
                        .leaves(&["Salary"]),
                )
                .varying("Organization", "Time")
                .reclassify("Organization", "Joe", "PTE", "Feb")
                .reclassify("Organization", "Joe", "Contractor", "Mar")
                .clear_at("Organization", "Joe", &["May"])
                .build()
                .unwrap(),
        );
        let org = schema.resolve_dimension("Organization").unwrap();
        let mut rules = olap_cube::RuleSet::new();
        rules.set_measure_dim(schema.resolve_dimension("Measures").unwrap());
        let mut b = Cube::builder(Arc::clone(&schema), vec![2, 3, 1])
            .unwrap()
            .rules(rules);
        let varying = schema.varying(org).unwrap();
        for (i, inst) in varying.instances().iter().enumerate() {
            for t in inst.validity.iter() {
                b.set_num(&[i as u32, t, 0], 10.0).unwrap();
            }
        }
        b.finish().unwrap()
    }

    #[test]
    fn plain_query_grid() {
        let cube = fixture();
        let ctx = QueryContext::new(&cube);
        let g = execute(
            &ctx,
            "SELECT {Time.[Q1], Time.[Q2]} ON COLUMNS, \
             {Organization.[FTE].Children} ON ROWS \
             FROM [Warehouse] WHERE (Measures.[Salary])",
        )
        .unwrap();
        assert_eq!(g.columns, vec!["Q1", "Q2"]);
        assert_eq!(g.rows, vec!["Joe", "Lisa"]);
        // Joe Q1 = Jan 10 + Feb 10 + Mar 10 (all instances) = 30.
        assert_eq!(g.cell("Joe", "Q1"), Some(CellValue::Num(30.0)));
        // Joe Q2 = Apr + Jun (May vacation) = 20.
        assert_eq!(g.cell("Joe", "Q2"), Some(CellValue::Num(20.0)));
        assert_eq!(g.cell("Lisa", "Q1"), Some(CellValue::Num(30.0)));
    }

    #[test]
    fn instance_pinned_slicer() {
        // The Section 3.2 example: salaries for [FTE].[Joe] specifically.
        let cube = fixture();
        let ctx = QueryContext::new(&cube);
        let g = execute(
            &ctx,
            "SELECT {Time.[Q1], Time.[Q2]} ON COLUMNS, \
             {Measures.[Salary]} ON ROWS \
             FROM [Warehouse] WHERE (Organization.[FTE].[Joe])",
        )
        .unwrap();
        // FTE/Joe is valid only in Jan: Q1 = 10, Q2 = ⊥.
        assert_eq!(g.cell("Salary", "Q1"), Some(CellValue::Num(10.0)));
        assert_eq!(g.cell("Salary", "Q2"), Some(CellValue::Null));
    }

    #[test]
    fn perspective_static_drops_other_instances() {
        let cube = fixture();
        let ctx = QueryContext::new(&cube);
        let g = execute(
            &ctx,
            "WITH PERSPECTIVE {(Jan)} FOR Organization STATIC VISUAL \
             SELECT {Time.[Q1]} ON COLUMNS, {Organization.[PTE]} ON ROWS \
             FROM [W] WHERE (Measures.[Salary])",
        )
        .unwrap();
        // Static at Jan: PTE/Joe dropped; PTE Q1 = Tom only = 30.
        assert_eq!(g.cell("PTE", "Q1"), Some(CellValue::Num(30.0)));
    }

    #[test]
    fn perspective_forward_visual_reroutes() {
        let cube = fixture();
        let ctx = QueryContext::new(&cube);
        let g = execute(
            &ctx,
            "WITH PERSPECTIVE {(Feb), (Apr)} FOR Organization DYNAMIC FORWARD VISUAL \
             SELECT {Time.[Q1], Time.[Q2]} ON COLUMNS, \
             {Organization.[FTE], Organization.[PTE], Organization.[Contractor]} ON ROWS \
             FROM [W] WHERE (Measures.[Salary])",
        )
        .unwrap();
        // PTE owns [Feb, Apr): Tom (30) + Joe's Feb & Mar (20) = 50 in Q1.
        assert_eq!(g.cell("PTE", "Q1"), Some(CellValue::Num(50.0)));
        // FTE Q1: Lisa only (Joe's FTE instance inactive) = 30.
        assert_eq!(g.cell("FTE", "Q1"), Some(CellValue::Num(30.0)));
        // Contractor Q2: Jane 30 + Joe Apr+Jun 20 = 50.
        assert_eq!(g.cell("Contractor", "Q2"), Some(CellValue::Num(50.0)));
    }

    #[test]
    fn perspective_nonvisual_keeps_input_rollups() {
        let cube = fixture();
        let ctx = QueryContext::new(&cube);
        let g = execute(
            &ctx,
            "WITH PERSPECTIVE {(Feb), (Apr)} FOR Organization DYNAMIC FORWARD NONVISUAL \
             SELECT {Time.[Q1]} ON COLUMNS, {Organization.[PTE]} ON ROWS \
             FROM [W] WHERE (Measures.[Salary])",
        )
        .unwrap();
        // Non-visual: PTE Q1 stays the input's 40 (Tom 30 + PTE/Joe Feb).
        assert_eq!(g.cell("PTE", "Q1"), Some(CellValue::Num(40.0)));
    }

    #[test]
    fn changes_clause_splits_members() {
        let cube = fixture();
        let ctx = QueryContext::new(&cube);
        let g = execute(
            &ctx,
            "WITH CHANGES {([FTE].[Lisa], [FTE], [PTE], Apr)} VISUAL \
             SELECT {Time.[Q2]} ON COLUMNS, \
             {Organization.[FTE], Organization.[PTE]} ON ROWS \
             FROM [W] WHERE (Measures.[Salary])",
        )
        .unwrap();
        // Q2: Lisa hypothetically PTE from Apr ⇒ PTE = Tom 30 + Lisa 30.
        assert_eq!(g.cell("PTE", "Q2"), Some(CellValue::Num(60.0)));
        // FTE Q2: nobody (Joe is Contractor, Lisa moved) ⇒ ⊥.
        assert_eq!(g.cell("FTE", "Q2"), Some(CellValue::Null));
    }

    #[test]
    fn named_sets_with_children_and_head() {
        let cube = fixture();
        let mut ctx = QueryContext::new(&cube);
        let org = cube.schema().resolve_dimension("Organization").unwrap();
        let joe = cube.schema().dim(org).resolve("Joe").unwrap();
        let lisa = cube.schema().dim(org).resolve("Lisa").unwrap();
        ctx.define_set("Movers", org, &[joe, lisa]);
        let g = execute(
            &ctx,
            "SELECT {Time.[Q1]} ON COLUMNS, \
             {Head({[Movers].Children}, 1)} ON ROWS \
             FROM [W] WHERE (Measures.[Salary])",
        )
        .unwrap();
        assert_eq!(g.rows, vec!["Joe"]);
        assert_eq!(g.cell("Joe", "Q1"), Some(CellValue::Num(30.0)));
    }

    #[test]
    fn dimension_properties_report_classification() {
        let cube = fixture();
        let ctx = QueryContext::new(&cube);
        let g = execute(
            &ctx,
            "SELECT {Measures.[Salary]} ON COLUMNS, \
             {Organization.[Contractor].Children} \
             DIMENSION PROPERTIES [Organization] ON ROWS FROM [W]",
        )
        .unwrap();
        assert_eq!(g.rows, vec!["Jane"]);
        // Jane's classification: Contractor.
        assert_eq!(g.row_properties[0], vec!["Contractor".to_string()]);
    }

    #[test]
    fn crossjoin_tuples_combine_dimensions() {
        let cube = fixture();
        let ctx = QueryContext::new(&cube);
        let g = execute(
            &ctx,
            "SELECT {CrossJoin({Time.[Q1], Time.[Q2]}, {Measures.[Salary]})} ON COLUMNS, \
             {Organization.[Contractor]} ON ROWS FROM [W]",
        )
        .unwrap();
        assert_eq!(g.columns, vec!["Q1 / Salary", "Q2 / Salary"]);
        // Contractor Q1 = Jane 30 + Contractor/Joe Mar 10 = 40.
        assert_eq!(g.cells[0][0], CellValue::Num(40.0));
    }

    #[test]
    fn filter_keeps_satisfying_tuples() {
        // The Section 4.1 predicate shape at the query level: employees
        // whose Q1 salary exceeds a threshold.
        let cube = fixture();
        let ctx = QueryContext::new(&cube);
        let g = execute(
            &ctx,
            "SELECT {Measures.[Salary]} ON COLUMNS, \
             {Filter({Organization.[FTE].Children, Organization.[PTE].Children, \
                      Organization.[Contractor].Children}, \
                     (Time.[Q1], Measures.[Salary]) > 25)} ON ROWS \
             FROM [W]",
        )
        .unwrap();
        // Q1 salaries: Joe 30, Lisa 30, Tom 30, Jane 30 — all pass at 25…
        assert_eq!(g.rows, vec!["Joe", "Lisa", "Tom", "Jane"]);
        // …and a 45 threshold keeps nobody (⊥ never satisfies either).
        let g = execute(
            &ctx,
            "SELECT {Measures.[Salary]} ON COLUMNS, \
             {Filter({Organization.[FTE].Children}, (Time.[Q1], Measures.[Salary]) > 45)} \
             ON ROWS FROM [W]",
        )
        .unwrap();
        assert_eq!(g.height(), 0);
    }

    #[test]
    fn tail_takes_the_suffix() {
        let cube = fixture();
        let ctx = QueryContext::new(&cube);
        let g = execute(
            &ctx,
            "SELECT {Measures.[Salary]} ON COLUMNS, \
             {Tail({Time.Quarter.Month.MEMBERS}, 2)} ON ROWS FROM [W]",
        )
        .unwrap();
        assert_eq!(g.rows, vec!["May", "Jun"]);
    }

    #[test]
    fn pages_axis_rejected() {
        let cube = fixture();
        let ctx = QueryContext::new(&cube);
        let err = execute(&ctx, "SELECT {Jan} ON PAGES FROM [W]").unwrap_err();
        assert!(err.to_string().contains("PAGES"));
    }
}
