//! Recursive-descent parser for the MDX subset.

use crate::ast::*;
use crate::error::MdxError;
use crate::lexer::{lex, Tok, Token};
use crate::Result;
use whatif_core::{Mode, Semantics};

/// Parses a query.
pub fn parse(src: &str) -> Result<Query> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let q = p.query()?;
    p.expect_eof()?;
    Ok(q)
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].kind
    }

    fn at(&self) -> usize {
        self.toks[self.pos].at
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].kind.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T> {
        Err(MdxError::Parse {
            at: self.at(),
            msg: msg.into(),
        })
    }

    fn peek_kw(&self, kw: &str) -> bool {
        self.peek().keyword().as_deref() == Some(kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.err(format!("expected {kw}, found {:?}", self.peek()))
        }
    }

    fn expect_tok(&mut self, t: Tok, what: &str) -> Result<()> {
        if *self.peek() == t {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {what}, found {:?}", self.peek()))
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if *self.peek() == Tok::Eof {
            Ok(())
        } else {
            self.err(format!("trailing input: {:?}", self.peek()))
        }
    }

    /// A name: identifier or bracketed.
    fn name(&mut self) -> Result<String> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            Tok::Bracketed(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected a name, found {other:?}")),
        }
    }

    fn number_f64(&mut self) -> Result<f64> {
        match self.peek().clone() {
            Tok::Number(n) => {
                self.bump();
                Ok(n as f64)
            }
            Tok::Float(v) => {
                self.bump();
                Ok(v)
            }
            other => self.err(format!("expected a number, found {other:?}")),
        }
    }

    fn number(&mut self) -> Result<u64> {
        match self.peek().clone() {
            Tok::Number(n) => {
                self.bump();
                Ok(n)
            }
            other => self.err(format!("expected a number, found {other:?}")),
        }
    }

    fn query(&mut self) -> Result<Query> {
        let with = if self.peek_kw("WITH") {
            self.bump();
            Some(self.with_clause()?)
        } else {
            None
        };
        self.expect_kw("SELECT")?;
        let mut axes = vec![self.axis_spec()?];
        while *self.peek() == Tok::Comma {
            self.bump();
            axes.push(self.axis_spec()?);
        }
        let from = if self.eat_kw("FROM") {
            let mut segs = vec![self.name()?];
            while *self.peek() == Tok::Dot {
                self.bump();
                segs.push(self.name()?);
            }
            Some(segs)
        } else {
            None
        };
        let slicer = if self.eat_kw("WHERE") {
            self.expect_tok(Tok::LParen, "'('")?;
            let mut ms = vec![self.member_expr()?];
            while *self.peek() == Tok::Comma {
                self.bump();
                ms.push(self.member_expr()?);
            }
            self.expect_tok(Tok::RParen, "')'")?;
            Some(ms)
        } else {
            None
        };
        Ok(Query {
            with,
            axes,
            from,
            slicer,
        })
    }

    fn with_clause(&mut self) -> Result<WithClause> {
        if self.eat_kw("PERSPECTIVE") {
            self.expect_tok(Tok::LBrace, "'{'")?;
            let mut moments = Vec::new();
            if *self.peek() != Tok::RBrace {
                loop {
                    // Moments may be parenthesized ("(Jan)") or bare.
                    if *self.peek() == Tok::LParen {
                        self.bump();
                        moments.push(self.member_expr()?);
                        self.expect_tok(Tok::RParen, "')'")?;
                    } else {
                        moments.push(self.member_expr()?);
                    }
                    if *self.peek() == Tok::Comma {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            self.expect_tok(Tok::RBrace, "'}'")?;
            self.expect_kw("FOR")?;
            let dim = self.name()?;
            let semantics = self.semantics()?;
            let mode = self.opt_mode();
            Ok(WithClause::Perspective {
                moments,
                dim,
                semantics,
                mode,
            })
        } else if self.eat_kw("CHANGES") {
            self.expect_tok(Tok::LBrace, "'{'")?;
            let mut tuples = Vec::new();
            loop {
                self.expect_tok(Tok::LParen, "'('")?;
                let member = self.member_expr()?;
                self.expect_tok(Tok::Comma, "','")?;
                let old_parent = self.member_expr()?;
                self.expect_tok(Tok::Comma, "','")?;
                let new_parent = self.member_expr()?;
                self.expect_tok(Tok::Comma, "','")?;
                let at = self.member_expr()?;
                self.expect_tok(Tok::RParen, "')'")?;
                tuples.push(ChangeTuple {
                    member,
                    old_parent,
                    new_parent,
                    at,
                });
                if *self.peek() == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
            self.expect_tok(Tok::RBrace, "'}'")?;
            let mode = self.opt_mode();
            Ok(WithClause::Changes { tuples, mode })
        } else {
            self.err("expected PERSPECTIVE or CHANGES after WITH")
        }
    }

    fn semantics(&mut self) -> Result<Semantics> {
        if self.eat_kw("STATIC") {
            return Ok(Semantics::Static);
        }
        // DYNAMIC is optional noise before FORWARD/BACKWARD/EXTENDED.
        let _ = self.eat_kw("DYNAMIC");
        let extended = self.eat_kw("EXTENDED");
        if self.eat_kw("FORWARD") {
            Ok(if extended {
                Semantics::ExtendedForward
            } else {
                Semantics::Forward
            })
        } else if self.eat_kw("BACKWARD") {
            Ok(if extended {
                Semantics::ExtendedBackward
            } else {
                Semantics::Backward
            })
        } else {
            self.err("expected STATIC, FORWARD, BACKWARD or EXTENDED …")
        }
    }

    fn opt_mode(&mut self) -> Option<Mode> {
        if self.eat_kw("VISUAL") {
            Some(Mode::Visual)
        } else if self.eat_kw("NONVISUAL") || self.eat_kw("NON_VISUAL") {
            Some(Mode::NonVisual)
        } else {
            None
        }
    }

    fn axis_spec(&mut self) -> Result<AxisSpec> {
        let set = self.set_expr()?;
        let mut properties = Vec::new();
        if self.eat_kw("DIMENSION") {
            self.expect_kw("PROPERTIES")?;
            properties.push(self.name()?);
            while *self.peek() == Tok::Comma {
                // Only consume the comma if a property follows (commas also
                // separate axes) — look ahead for a name then ON later.
                let save = self.pos;
                self.bump();
                match self.name() {
                    Ok(n) if !self.peek_kw("ON") || properties.is_empty() => {
                        // Heuristic: property lists are rare; treat a name
                        // directly followed by ON as the next axis only
                        // when it can't be a property. Keep it simple:
                        // accept as property.
                        properties.push(n);
                    }
                    _ => {
                        self.pos = save;
                        break;
                    }
                }
            }
        }
        self.expect_kw("ON")?;
        let axis = if self.eat_kw("COLUMNS") {
            Axis::Columns
        } else if self.eat_kw("ROWS") {
            Axis::Rows
        } else if self.eat_kw("PAGES") {
            Axis::Pages
        } else {
            return self.err("expected COLUMNS, ROWS or PAGES");
        };
        Ok(AxisSpec {
            set,
            properties,
            axis,
        })
    }

    fn set_expr(&mut self) -> Result<SetExpr> {
        match self.peek().clone() {
            Tok::LBrace => {
                self.bump();
                let mut items = Vec::new();
                if *self.peek() != Tok::RBrace {
                    items.push(self.set_expr()?);
                    while *self.peek() == Tok::Comma {
                        self.bump();
                        items.push(self.set_expr()?);
                    }
                }
                self.expect_tok(Tok::RBrace, "'}'")?;
                Ok(SetExpr::Braces(items))
            }
            Tok::LParen => {
                self.bump();
                let mut ms = vec![self.member_expr()?];
                while *self.peek() == Tok::Comma {
                    self.bump();
                    ms.push(self.member_expr()?);
                }
                self.expect_tok(Tok::RParen, "')'")?;
                Ok(SetExpr::Tuple(ms))
            }
            Tok::Ident(s) => {
                let kw = s.to_ascii_uppercase();
                match kw.as_str() {
                    "CROSSJOIN" | "UNION" => {
                        self.bump();
                        self.expect_tok(Tok::LParen, "'('")?;
                        let a = self.set_expr()?;
                        self.expect_tok(Tok::Comma, "','")?;
                        let b = self.set_expr()?;
                        self.expect_tok(Tok::RParen, "')'")?;
                        Ok(if kw == "CROSSJOIN" {
                            SetExpr::CrossJoin(Box::new(a), Box::new(b))
                        } else {
                            SetExpr::Union(Box::new(a), Box::new(b))
                        })
                    }
                    "HEAD" | "TAIL" => {
                        self.bump();
                        self.expect_tok(Tok::LParen, "'('")?;
                        let a = self.set_expr()?;
                        self.expect_tok(Tok::Comma, "','")?;
                        let n = self.number()?;
                        self.expect_tok(Tok::RParen, "')'")?;
                        Ok(if kw == "HEAD" {
                            SetExpr::Head(Box::new(a), n)
                        } else {
                            SetExpr::Tail(Box::new(a), n)
                        })
                    }
                    "FILTER" => {
                        self.bump();
                        self.expect_tok(Tok::LParen, "'('")?;
                        let a = self.set_expr()?;
                        self.expect_tok(Tok::Comma, "','")?;
                        // Condition: member(s) <op> number.
                        let members = if *self.peek() == Tok::LParen {
                            self.bump();
                            let mut ms = vec![self.member_expr()?];
                            while *self.peek() == Tok::Comma {
                                self.bump();
                                ms.push(self.member_expr()?);
                            }
                            self.expect_tok(Tok::RParen, "')'")?;
                            ms
                        } else {
                            vec![self.member_expr()?]
                        };
                        let op = match self.peek().clone() {
                            Tok::Cmp(op) => {
                                self.bump();
                                op
                            }
                            other => {
                                return self.err(format!(
                                    "expected a comparison operator, found {other:?}"
                                ))
                            }
                        };
                        let value = self.number_f64()?;
                        self.expect_tok(Tok::RParen, "')'")?;
                        Ok(SetExpr::Filter(
                            Box::new(a),
                            FilterCond { members, op, value },
                        ))
                    }
                    _ => Ok(SetExpr::Ref(self.member_expr()?)),
                }
            }
            Tok::Bracketed(_) => Ok(SetExpr::Ref(self.member_expr()?)),
            other => self.err(format!("expected a set expression, found {other:?}")),
        }
    }

    fn member_expr(&mut self) -> Result<MemberExpr> {
        // Primary: Descendants(…) or a path head.
        let mut expr = if self.peek_kw("DESCENDANTS") {
            self.bump();
            self.expect_tok(Tok::LParen, "'('")?;
            let m = self.member_expr()?;
            self.expect_tok(Tok::Comma, "','")?;
            let n = self.number()? as u32;
            let flag = if *self.peek() == Tok::Comma {
                self.bump();
                let f = self.name()?;
                match f.to_ascii_uppercase().as_str() {
                    "SELF_AND_AFTER" => DescFlag::SelfAndAfter,
                    "SELF" => DescFlag::SelfOnly,
                    other => return self.err(format!("unknown Descendants flag {other:?}")),
                }
            } else {
                DescFlag::SelfOnly
            };
            self.expect_tok(Tok::RParen, "')'")?;
            MemberExpr::Descendants(Box::new(m), n, flag)
        } else {
            MemberExpr::Path(vec![self.name()?])
        };
        // Suffixes.
        while *self.peek() == Tok::Dot {
            self.bump();
            // Suffix keyword or a further path segment.
            let seg = self.name()?;
            match seg.to_ascii_uppercase().as_str() {
                "CHILDREN" => expr = MemberExpr::Children(Box::new(expr)),
                "MEMBERS" => expr = MemberExpr::Members(Box::new(expr)),
                "LEVELS" => {
                    self.expect_tok(Tok::LParen, "'('")?;
                    let n = self.number()? as u32;
                    self.expect_tok(Tok::RParen, "')'")?;
                    self.expect_tok(Tok::Dot, "'.'")?;
                    let m = self.name()?;
                    if !m.eq_ignore_ascii_case("MEMBERS") {
                        return self.err("expected Members after Levels(n)");
                    }
                    expr = MemberExpr::LevelsMembers(Box::new(expr), n);
                }
                _ => match &mut expr {
                    MemberExpr::Path(segs) => segs.push(seg),
                    _ => {
                        return self.err(format!("cannot extend {expr} with path segment {seg:?}"))
                    }
                },
            }
        }
        Ok(expr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_fig10a() {
        // Fig. 10(a), verbatim modulo whitespace.
        let q = parse(
            "WITH perspective {(Jan), (Jul)} for Department STATIC \
             select {CrossJoin({[Account].Levels(0).Members}, \
             {([Current], [Local], [BU Version_1], [HSP_InputValue])})} on columns, \
             {CrossJoin({Union({Union({[EmployeesWithAtleastOneMove-Set1].Children}, \
             {[EmployeesWithAtleastOneMove-Set2].Children})}, \
             {[EmployeesWithAtleastOneMove-Set3].Children})}, \
             {Descendants([Period],1,self_and_after)})} \
             DIMENSION PROPERTIES [Department] on rows \
             from [App].[Db]",
        )
        .unwrap();
        match q.with.as_ref().unwrap() {
            WithClause::Perspective {
                moments,
                dim,
                semantics,
                mode,
            } => {
                assert_eq!(moments.len(), 2);
                assert_eq!(dim, "Department");
                assert_eq!(*semantics, Semantics::Static);
                assert_eq!(*mode, None); // defaults to non-visual
            }
            _ => panic!("wrong clause"),
        }
        assert_eq!(q.axes.len(), 2);
        assert_eq!(q.axes[0].axis, Axis::Columns);
        assert_eq!(q.axes[1].axis, Axis::Rows);
        assert_eq!(q.axes[1].properties, vec!["Department".to_string()]);
        assert_eq!(q.from, Some(vec!["App".to_string(), "Db".to_string()]));
    }

    #[test]
    fn parses_fig10b_dynamic_forward() {
        let q = parse(
            "WITH perspective {(Jan), (Apr), (Jul), (Oct)} for Department DYNAMIC FORWARD \
             select {EmployeeS3} on columns, {Descendants([Period],1,self_and_after)} on rows \
             from [App].[Db]",
        )
        .unwrap();
        match q.with.as_ref().unwrap() {
            WithClause::Perspective {
                moments, semantics, ..
            } => {
                assert_eq!(moments.len(), 4);
                assert_eq!(*semantics, Semantics::Forward);
            }
            _ => panic!("wrong clause"),
        }
    }

    #[test]
    fn parses_fig10c_head() {
        let q = parse(
            "WITH perspective {(Jan)} for Department DYNAMIC FORWARD \
             select {Head({[Set1].Children}, 50)} on rows from [App].[Db]",
        )
        .unwrap();
        match &q.axes[0].set {
            SetExpr::Braces(items) => match &items[0] {
                SetExpr::Head(_, n) => assert_eq!(*n, 50),
                other => panic!("expected Head, got {other:?}"),
            },
            other => panic!("expected braces, got {other:?}"),
        }
    }

    #[test]
    fn parses_changes_clause() {
        let q = parse(
            "WITH CHANGES {([FTE].[Lisa], [FTE], [PTE], Apr)} VISUAL \
             select {Jan} on columns from [W]",
        )
        .unwrap();
        match q.with.as_ref().unwrap() {
            WithClause::Changes { tuples, mode } => {
                assert_eq!(tuples.len(), 1);
                assert_eq!(*mode, Some(Mode::Visual));
                assert_eq!(
                    tuples[0].member,
                    MemberExpr::Path(vec!["FTE".into(), "Lisa".into()])
                );
            }
            _ => panic!("wrong clause"),
        }
    }

    #[test]
    fn parses_where_slicer() {
        let q = parse(
            "SELECT {Time.[Q1], Time.[Q2]} ON COLUMNS, \
             Location.Region.State.MEMBERS ON ROWS \
             FROM Warehouse \
             WHERE (Organization.[FTE].[Joe], Measures.[Compensation].[Salary])",
        )
        .unwrap();
        let slicer = q.slicer.unwrap();
        assert_eq!(slicer.len(), 2);
        assert_eq!(
            slicer[0],
            MemberExpr::Path(vec!["Organization".into(), "FTE".into(), "Joe".into()])
        );
        match &q.axes[1].set {
            SetExpr::Ref(MemberExpr::Members(inner)) => {
                assert_eq!(
                    **inner,
                    MemberExpr::Path(vec!["Location".into(), "Region".into(), "State".into()])
                );
            }
            other => panic!("expected MEMBERS, got {other:?}"),
        }
    }

    #[test]
    fn extended_semantics_variants() {
        for (txt, sem) in [
            ("STATIC", Semantics::Static),
            ("FORWARD", Semantics::Forward),
            ("DYNAMIC FORWARD", Semantics::Forward),
            ("DYNAMIC BACKWARD", Semantics::Backward),
            ("EXTENDED FORWARD", Semantics::ExtendedForward),
            ("DYNAMIC EXTENDED BACKWARD", Semantics::ExtendedBackward),
        ] {
            let q = parse(&format!(
                "WITH PERSPECTIVE {{(Jan)}} FOR D {txt} SELECT {{X}} ON COLUMNS FROM [W]"
            ))
            .unwrap();
            match q.with.unwrap() {
                WithClause::Perspective { semantics, .. } => assert_eq!(semantics, sem, "{txt}"),
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn error_positions_reported() {
        let err = parse("SELECT ON COLUMNS").unwrap_err();
        assert!(matches!(err, MdxError::Parse { .. }));
        let err = parse("WITH FOO").unwrap_err();
        assert!(err.to_string().contains("PERSPECTIVE"));
    }

    #[test]
    fn display_roundtrips() {
        let srcs = [
            "WITH PERSPECTIVE {(Jan), (Apr)} FOR Department DYNAMIC FORWARD VISUAL \
             SELECT {CrossJoin({A.Levels(0).Members}, {(B, C)})} ON COLUMNS, \
             {Head({S.Children}, 5)} ON ROWS FROM [App].[Db] WHERE (M.X)",
            "SELECT {Union({A}, {B.MEMBERS})} ON COLUMNS, \
             {Descendants(P, 1, SELF_AND_AFTER)} ON ROWS FROM [W]",
        ];
        for src in srcs {
            let q1 = parse(src).unwrap();
            let printed = q1.to_string();
            let q2 = parse(&printed).unwrap_or_else(|e| panic!("reparse {printed}: {e}"));
            assert_eq!(q1, q2, "roundtrip failed for {printed}");
        }
    }
}
