//! # olap-mdx
//!
//! An MDX-subset parser and evaluator with the paper's extensions
//! (Section 3.2–3.4, and the experiment queries of Fig. 10):
//!
//! ```text
//! WITH PERSPECTIVE {(Jan), (Apr)} FOR Department DYNAMIC FORWARD VISUAL
//! SELECT {CrossJoin({[Account].Levels(0).Members}, {([Current], [Local])})} ON COLUMNS,
//!        {CrossJoin({[EmployeeS3]}, {Descendants([Period], 1, SELF_AND_AFTER)})}
//!        DIMENSION PROPERTIES [Department] ON ROWS
//! FROM [App].[Db]
//! WHERE (Organization.[FTE].[Joe], Measures.[Salary])
//! ```
//!
//! Supported set machinery: `{…}` set literals, `(…)` tuples,
//! `CrossJoin`, `Union`, `Head`, `.Children`, `.Members`,
//! `<levels>.MEMBERS`, `[X].Levels(n).Members` (Essbase convention:
//! level 0 = leaves), `Descendants(m, n, SELF_AND_AFTER)`, named sets
//! registered on the [`QueryContext`], and the `WITH CHANGES
//! {(m, o, n, t), …}` positive-scenario clause.
//!
//! Evaluation compiles the `WITH` clause to a [`whatif_core::Scenario`],
//! applies it with a configurable [`whatif_core::Strategy`], and renders
//! the axes into a [`Grid`], respecting visual / non-visual mode for
//! derived cells.

pub mod ast;
pub mod error;
pub mod eval;
pub mod grid;
pub mod lexer;
pub mod parser;
pub mod resolve;

pub use ast::{Axis, AxisSpec, DescFlag, MemberExpr, Query, SetExpr, WithClause};
pub use error::MdxError;
pub use eval::{compile_with, evaluate, evaluate_full, execute, execute_with_report, QueryContext};
pub use grid::Grid;
pub use parser::parse;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, MdxError>;
