//! MDX errors with source positions.

use std::fmt;

/// Errors from lexing, parsing, resolution, or evaluation.
#[derive(Debug)]
pub enum MdxError {
    /// Lexical error at a byte offset.
    Lex {
        /// Byte offset into the query text.
        at: usize,
        /// What went wrong.
        msg: String,
    },
    /// Parse error.
    Parse {
        /// Byte offset of the offending token.
        at: usize,
        /// What was expected / found.
        msg: String,
    },
    /// A name (member, dimension, set) did not resolve.
    Unresolved(String),
    /// Structural problem (wrong axis count, missing clause, …).
    Semantic(String),
    /// Underlying what-if error.
    WhatIf(whatif_core::WhatIfError),
    /// Underlying cube error.
    Cube(olap_cube::CubeError),
}

impl fmt::Display for MdxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MdxError::Lex { at, msg } => write!(f, "lex error at byte {at}: {msg}"),
            MdxError::Parse { at, msg } => write!(f, "parse error at byte {at}: {msg}"),
            MdxError::Unresolved(n) => write!(f, "cannot resolve {n:?}"),
            MdxError::Semantic(m) => write!(f, "semantic error: {m}"),
            MdxError::WhatIf(e) => write!(f, "what-if error: {e}"),
            MdxError::Cube(e) => write!(f, "cube error: {e}"),
        }
    }
}

impl std::error::Error for MdxError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MdxError::WhatIf(e) => Some(e),
            MdxError::Cube(e) => Some(e),
            _ => None,
        }
    }
}

impl From<whatif_core::WhatIfError> for MdxError {
    fn from(e: whatif_core::WhatIfError) -> Self {
        MdxError::WhatIf(e)
    }
}

impl From<olap_cube::CubeError> for MdxError {
    fn from(e: olap_cube::CubeError) -> Self {
        MdxError::Cube(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_has_positions() {
        let e = MdxError::Parse {
            at: 42,
            msg: "expected SELECT".into(),
        };
        assert!(e.to_string().contains("42"));
        assert!(MdxError::Unresolved("[Xyz]".into())
            .to_string()
            .contains("Xyz"));
    }
}
