//! Name resolution: member expressions → axis atoms against a schema.

use crate::ast::{DescFlag, MemberExpr};
use crate::error::MdxError;
use crate::Result;
use olap_cube::Sel;
use olap_model::{DimensionId, InstanceId, MemberId, Moment, Schema};
use std::collections::HashMap;

/// One resolved coordinate: a dimension plus a selector, with a display
/// label.
#[derive(Debug, Clone, PartialEq)]
pub struct Atom {
    /// The dimension the selector addresses.
    pub dim: DimensionId,
    /// The selector (slot for leaf members / pinned instances, member for
    /// rollups).
    pub sel: Sel,
    /// Human-readable label for grid headers.
    pub label: String,
}

/// A point on an axis: one atom per mentioned dimension.
pub type Tuple = Vec<Atom>;

/// Named sets: pre-resolved atom lists registered on the context.
pub type NamedSets = HashMap<String, Vec<Atom>>;

/// Resolves member expressions against a schema.
pub struct Resolver<'a> {
    schema: &'a Schema,
    named_sets: &'a NamedSets,
}

impl<'a> Resolver<'a> {
    /// A resolver over a schema and named-set registry.
    pub fn new(schema: &'a Schema, named_sets: &'a NamedSets) -> Self {
        Resolver { schema, named_sets }
    }

    /// Builds an atom for a member of a dimension, choosing the cheapest
    /// faithful selector.
    pub fn atom_for_member(&self, dim: DimensionId, m: MemberId) -> Atom {
        let d = self.schema.dim(dim);
        let label = d.member_name(m).to_string();
        if d.is_leaf(m) && !self.schema.is_varying(dim) {
            if let Some(ord) = d.leaf_ordinal(m) {
                return Atom {
                    dim,
                    sel: Sel::Slot(ord),
                    label,
                };
            }
        }
        Atom {
            dim,
            sel: Sel::Member(m),
            label,
        }
    }

    fn atom_for_instance(&self, dim: DimensionId, inst: InstanceId) -> Atom {
        let v = self.schema.varying(dim).expect("instance implies varying");
        Atom {
            dim,
            sel: Sel::Slot(inst.0),
            label: v.instance_name(self.schema.dim(dim), inst),
        }
    }

    /// Resolves a dotted path. Resolution order:
    /// 1. first segment names a dimension → walk the rest inside it
    ///    (pinning a varying-dimension *instance* when the path spells out
    ///    a parent chain, e.g. `Organization.[FTE].[Joe]`);
    /// 2. single segment naming a registered named set;
    /// 3. otherwise, search every dimension for the path.
    pub fn path(&self, segs: &[String]) -> Result<Vec<Atom>> {
        if segs.is_empty() {
            return Err(MdxError::Unresolved("<empty path>".into()));
        }
        if segs.len() == 1 {
            if let Some(atoms) = self.named_sets.get(&segs[0]) {
                return Ok(atoms.clone());
            }
        }
        if let Some(dim) = self.schema.find_dimension(&segs[0]) {
            if segs.len() == 1 {
                // The dimension itself ⇒ its root member (grand total).
                return Ok(vec![Atom {
                    dim,
                    sel: Sel::Member(MemberId::ROOT),
                    label: segs[0].clone(),
                }]);
            }
            return self.path_in_dim(dim, &segs[1..]).map(|a| vec![a]);
        }
        // Search all dimensions.
        for dim in self.schema.dim_ids() {
            if let Ok(a) = self.path_in_dim(dim, segs) {
                return Ok(vec![a]);
            }
        }
        Err(MdxError::Unresolved(segs.join(".")))
    }

    /// Resolves a path (without the dimension prefix) inside one
    /// dimension.
    fn path_in_dim(&self, dim: DimensionId, segs: &[String]) -> Result<Atom> {
        let d = self.schema.dim(dim);
        // Try a rooted parent-chain walk first.
        let mut cur = MemberId::ROOT;
        let mut chain_ok = true;
        for seg in segs {
            match d.find_under(cur, seg) {
                Some(next) => cur = next,
                None => {
                    chain_ok = false;
                    break;
                }
            }
        }
        if chain_ok {
            // Exact chain: for varying dims with a multi-segment chain to a
            // leaf, pin the instance with that path.
            if segs.len() > 1 && d.is_leaf(cur) {
                if let Some(v) = self.schema.varying(dim) {
                    let want: Vec<MemberId> = {
                        // Re-walk to collect the chain above the leaf.
                        let mut path = Vec::new();
                        let mut c = MemberId::ROOT;
                        for seg in &segs[..segs.len() - 1] {
                            c = d.find_under(c, seg).expect("walk succeeded");
                            path.push(c);
                        }
                        path
                    };
                    for &inst in v.instances_of(cur) {
                        if v.instance(inst).path == want {
                            return Ok(self.atom_for_instance(dim, inst));
                        }
                    }
                    return Err(MdxError::Unresolved(format!(
                        "{} has no instance {}",
                        d.member_name(cur),
                        segs.join("/")
                    )));
                }
            }
            return Ok(self.atom_for_member(dim, cur));
        }
        // Fallback: a single segment may name any member in the dimension.
        if segs.len() == 1 {
            if let Some(m) = d.find(&segs[0]) {
                return Ok(self.atom_for_member(dim, m));
            }
        }
        // Varying dimensions: the path may spell out a *reclassified*
        // instance (e.g. `Organization.PTE.Joe` after Joe moved to PTE),
        // which the static hierarchy doesn't contain. Match the segments
        // against instance paths by member name.
        if segs.len() > 1 {
            if let Some(v) = self.schema.varying(dim) {
                let leaf = d.find(segs.last().expect("non-empty"));
                let want: Option<Vec<MemberId>> =
                    segs[..segs.len() - 1].iter().map(|s| d.find(s)).collect();
                if let (Some(leaf), Some(want)) = (leaf, want) {
                    for &inst in v.instances_of(leaf) {
                        if v.instance(inst).path == want {
                            return Ok(self.atom_for_instance(dim, inst));
                        }
                    }
                }
            }
        }
        Err(MdxError::Unresolved(format!(
            "{}.{}",
            d.name(),
            segs.join(".")
        )))
    }

    /// Resolves a member expression to its atom set.
    pub fn member_set(&self, expr: &MemberExpr) -> Result<Vec<Atom>> {
        match expr {
            MemberExpr::Path(segs) => self.path(segs),
            MemberExpr::Children(inner) => {
                // Named-set accommodation: `[Set1].Children` yields the
                // set's contents (the Essbase idiom of Fig. 10).
                if let MemberExpr::Path(segs) = &**inner {
                    if segs.len() == 1 {
                        if let Some(atoms) = self.named_sets.get(&segs[0]) {
                            return Ok(atoms.clone());
                        }
                    }
                }
                let parents = self.member_set(inner)?;
                let mut out = Vec::new();
                for p in parents {
                    let m = match p.sel {
                        Sel::Member(m) => m,
                        Sel::Slot(s) => self.schema.slot_member(p.dim, olap_model::AxisSlot(s)),
                    };
                    for &c in self.schema.dim(p.dim).children(m) {
                        out.push(self.atom_for_member(p.dim, c));
                    }
                }
                Ok(out)
            }
            MemberExpr::Members(inner) => {
                // `<dim>.<level names…>.MEMBERS`: the segment count after
                // the dimension name gives the level depth.
                let segs = match &**inner {
                    MemberExpr::Path(segs) => segs,
                    other => {
                        return Err(MdxError::Semantic(format!(
                            "MEMBERS expects a level path, got {other}"
                        )))
                    }
                };
                let dim = self
                    .schema
                    .find_dimension(&segs[0])
                    .ok_or_else(|| MdxError::Unresolved(segs.join(".")))?;
                let level = (segs.len() - 1) as u32;
                if level == 0 {
                    // `<dim>.MEMBERS`: every member of the dimension except
                    // the root.
                    let d = self.schema.dim(dim);
                    return Ok(d
                        .descendants(MemberId::ROOT)
                        .into_iter()
                        .map(|m| self.atom_for_member(dim, m))
                        .collect());
                }
                Ok(self
                    .schema
                    .dim(dim)
                    .members_at_level(level)
                    .into_iter()
                    .map(|m| self.atom_for_member(dim, m))
                    .collect())
            }
            MemberExpr::LevelsMembers(inner, n) => {
                let segs = match &**inner {
                    MemberExpr::Path(segs) if segs.len() == 1 => segs,
                    other => {
                        return Err(MdxError::Semantic(format!(
                            "Levels(n) expects a dimension name, got {other}"
                        )))
                    }
                };
                let dim = self
                    .schema
                    .find_dimension(&segs[0])
                    .ok_or_else(|| MdxError::Unresolved(segs[0].clone()))?;
                let d = self.schema.dim(dim);
                // Essbase convention: level 0 = leaves; level n = members
                // whose *height* (longest path to a leaf) is n.
                let mut heights: Vec<u32> = vec![0; d.member_count()];
                // Compute heights bottom-up: members in reverse insertion
                // order works because parents precede children.
                for m in d.member_ids().collect::<Vec<_>>().into_iter().rev() {
                    if let Some(p) = d.parent(m) {
                        let h = heights[m.index()] + 1;
                        if h > heights[p.index()] {
                            heights[p.index()] = h;
                        }
                    }
                }
                Ok(d.member_ids()
                    .filter(|&m| m != MemberId::ROOT && heights[m.index()] == *n)
                    .map(|m| self.atom_for_member(dim, m))
                    .collect())
            }
            MemberExpr::Descendants(inner, depth, flag) => {
                let bases = self.member_set(inner)?;
                let mut out = Vec::new();
                for b in bases {
                    let m = match b.sel {
                        Sel::Member(m) => m,
                        Sel::Slot(s) => self.schema.slot_member(b.dim, olap_model::AxisSlot(s)),
                    };
                    let d = self.schema.dim(b.dim);
                    let base_level = d.member(m).level;
                    for desc in d.descendants(m) {
                        let rel = d.member(desc).level - base_level;
                        let keep = match flag {
                            DescFlag::SelfOnly => rel == *depth,
                            DescFlag::SelfAndAfter => rel >= *depth,
                        };
                        if keep {
                            out.push(self.atom_for_member(b.dim, desc));
                        }
                    }
                }
                Ok(out)
            }
        }
    }

    /// Resolves an expression expected to denote exactly one member of a
    /// given dimension (change-relation entries, perspective moments).
    pub fn single_in_dim(&self, expr: &MemberExpr, dim: DimensionId) -> Result<MemberId> {
        let atoms = self.member_set(expr)?;
        let mut found = None;
        for a in atoms {
            if a.dim != dim {
                continue;
            }
            let m = match a.sel {
                Sel::Member(m) => m,
                Sel::Slot(s) => self.schema.slot_member(dim, olap_model::AxisSlot(s)),
            };
            if found.is_some() {
                return Err(MdxError::Semantic(format!("{expr} is not a single member")));
            }
            found = Some(m);
        }
        found.ok_or_else(|| MdxError::Unresolved(expr.to_string()))
    }

    /// Resolves an expression to a parameter-dimension moment.
    pub fn moment(&self, expr: &MemberExpr, param_dim: DimensionId) -> Result<Moment> {
        let m = self.single_in_dim(expr, param_dim)?;
        self.schema
            .moment_of(param_dim, m)
            .ok_or_else(|| MdxError::Semantic(format!("{expr} is not a leaf moment")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olap_model::{DimensionSpec, SchemaBuilder};

    fn schema() -> Schema {
        SchemaBuilder::new()
            .dimension(
                DimensionSpec::new("Organization")
                    .tree(&[("FTE", &["Joe", "Lisa"][..]), ("PTE", &["Tom"])]),
            )
            .dimension(DimensionSpec::new("Time").ordered().tree(&[
                ("Q1", &["Jan", "Feb", "Mar"][..]),
                ("Q2", &["Apr", "May", "Jun"]),
            ]))
            .varying("Organization", "Time")
            .reclassify("Organization", "Joe", "PTE", "Feb")
            .build()
            .unwrap()
    }

    fn resolver_test(f: impl FnOnce(&Resolver<'_>, &Schema)) {
        let s = schema();
        let sets = NamedSets::new();
        let r = Resolver::new(&s, &sets);
        f(&r, &s);
    }

    #[test]
    fn dimension_prefixed_path() {
        resolver_test(|r, s| {
            let atoms = r.path(&["Time".into(), "Q1".into(), "Feb".into()]).unwrap();
            assert_eq!(atoms.len(), 1);
            let time = s.resolve_dimension("Time").unwrap();
            assert_eq!(atoms[0].dim, time);
            assert_eq!(atoms[0].sel, Sel::Slot(1)); // Feb is leaf ordinal 1
        });
    }

    #[test]
    fn instance_pinning_on_varying_dim() {
        resolver_test(|r, s| {
            let org = s.resolve_dimension("Organization").unwrap();
            // Organization.FTE.Joe pins the FTE/Joe instance (slot 0).
            let atoms = r
                .path(&["Organization".into(), "FTE".into(), "Joe".into()])
                .unwrap();
            assert_eq!(atoms[0].dim, org);
            assert_eq!(atoms[0].sel, Sel::Slot(0));
            assert_eq!(atoms[0].label, "FTE/Joe");
            // PTE/Joe is a different instance.
            let atoms = r
                .path(&["Organization".into(), "PTE".into(), "Joe".into()])
                .unwrap();
            assert_eq!(atoms[0].sel, Sel::Slot(1));
        });
    }

    #[test]
    fn bare_member_name_searches_dimensions() {
        resolver_test(|r, s| {
            let atoms = r.path(&["Lisa".into()]).unwrap();
            let org = s.resolve_dimension("Organization").unwrap();
            assert_eq!(atoms[0].dim, org);
            // Leaf of a varying dim without a pinned path ⇒ Member sel
            // (aggregates instances).
            let lisa = s.dim(org).resolve("Lisa").unwrap();
            assert_eq!(atoms[0].sel, Sel::Member(lisa));
        });
    }

    #[test]
    fn named_sets_and_children_idiom() {
        let s = schema();
        let org = s.resolve_dimension("Organization").unwrap();
        let mut sets = NamedSets::new();
        {
            let r = Resolver::new(&s, &sets);
            let joe_atoms = r.path(&["Joe".into()]).unwrap();
            sets.insert("Movers".into(), joe_atoms);
        }
        let r = Resolver::new(&s, &sets);
        let direct = r.member_set(&MemberExpr::name("Movers")).unwrap();
        assert_eq!(direct.len(), 1);
        assert_eq!(direct[0].dim, org);
        // The Fig. 10 idiom: [Movers].Children = the set's contents.
        let via_children = r
            .member_set(&MemberExpr::Children(Box::new(MemberExpr::name("Movers"))))
            .unwrap();
        assert_eq!(via_children, direct);
    }

    #[test]
    fn children_of_member() {
        resolver_test(|r, _| {
            let atoms = r
                .member_set(&MemberExpr::Children(Box::new(MemberExpr::Path(vec![
                    "Organization".into(),
                    "FTE".into(),
                ]))))
                .unwrap();
            let labels: Vec<&str> = atoms.iter().map(|a| a.label.as_str()).collect();
            assert_eq!(labels, vec!["Joe", "Lisa"]);
        });
    }

    #[test]
    fn level_members_by_path_depth() {
        resolver_test(|r, _| {
            // Time.Quarter.Month.MEMBERS — level 2 (months).
            let atoms = r
                .member_set(&MemberExpr::Members(Box::new(MemberExpr::Path(vec![
                    "Time".into(),
                    "Quarter".into(),
                    "Month".into(),
                ]))))
                .unwrap();
            assert_eq!(atoms.len(), 6);
            assert_eq!(atoms[0].label, "Jan");
        });
    }

    #[test]
    fn essbase_levels_zero_is_leaves() {
        resolver_test(|r, _| {
            let atoms = r
                .member_set(&MemberExpr::LevelsMembers(
                    Box::new(MemberExpr::name("Time")),
                    0,
                ))
                .unwrap();
            assert_eq!(atoms.len(), 6); // the months
            let atoms = r
                .member_set(&MemberExpr::LevelsMembers(
                    Box::new(MemberExpr::name("Time")),
                    1,
                ))
                .unwrap();
            assert_eq!(atoms.len(), 2); // the quarters
        });
    }

    #[test]
    fn descendants_with_flags() {
        resolver_test(|r, _| {
            let all = r
                .member_set(&MemberExpr::Descendants(
                    Box::new(MemberExpr::name("Time")),
                    1,
                    DescFlag::SelfAndAfter,
                ))
                .unwrap();
            assert_eq!(all.len(), 8); // 2 quarters + 6 months
            let exact = r
                .member_set(&MemberExpr::Descendants(
                    Box::new(MemberExpr::name("Time")),
                    2,
                    DescFlag::SelfOnly,
                ))
                .unwrap();
            assert_eq!(exact.len(), 6);
        });
    }

    #[test]
    fn moment_resolution() {
        resolver_test(|r, s| {
            let time = s.resolve_dimension("Time").unwrap();
            assert_eq!(r.moment(&MemberExpr::name("Apr"), time).unwrap(), 3);
            assert!(r.moment(&MemberExpr::name("Q1"), time).is_err());
        });
    }

    #[test]
    fn unresolved_reports_name() {
        resolver_test(|r, _| {
            let err = r.path(&["Nonexistent".into()]).unwrap_err();
            assert!(err.to_string().contains("Nonexistent"));
        });
    }
}
