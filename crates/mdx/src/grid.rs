//! Query results: a two-axis grid, the way MDX renders cubes
//! ("similar to the way a spreadsheet displays data").

use olap_store::CellValue;
use std::fmt;

/// A rendered result grid.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid {
    /// Column headers (one per column tuple).
    pub columns: Vec<String>,
    /// Row headers (one per row tuple).
    pub rows: Vec<String>,
    /// `cells[r][c]`.
    pub cells: Vec<Vec<CellValue>>,
    /// Per-row `DIMENSION PROPERTIES` values (empty when none requested).
    pub row_properties: Vec<Vec<String>>,
    /// Names of the requested properties.
    pub property_names: Vec<String>,
}

impl Grid {
    /// Number of data columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Number of data rows.
    pub fn height(&self) -> usize {
        self.rows.len()
    }

    /// Looks a cell up by header labels.
    pub fn cell(&self, row: &str, col: &str) -> Option<CellValue> {
        let r = self.rows.iter().position(|x| x == row)?;
        let c = self.columns.iter().position(|x| x == col)?;
        Some(self.cells[r][c])
    }

    /// Sum of all numeric cells (⊥ skipped).
    pub fn total(&self) -> f64 {
        self.cells.iter().flatten().filter_map(|v| v.as_f64()).sum()
    }

    /// Count of non-⊥ cells.
    pub fn present_count(&self) -> usize {
        self.cells.iter().flatten().filter(|v| !v.is_null()).count()
    }

    /// CSV rendering: header row of column labels, then one row per row
    /// label; ⊥ cells are empty fields; property columns trail.
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str("row");
        for c in &self.columns {
            out.push(',');
            out.push_str(&esc(c));
        }
        for p in &self.property_names {
            out.push(',');
            out.push_str(&esc(p));
        }
        out.push('\n');
        for (r, row) in self.rows.iter().enumerate() {
            out.push_str(&esc(row));
            for v in &self.cells[r] {
                out.push(',');
                if let Some(x) = v.as_f64() {
                    out.push_str(&format!("{x}"));
                }
            }
            if let Some(props) = self.row_properties.get(r) {
                for p in props {
                    out.push(',');
                    out.push_str(&esc(p));
                }
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Grid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rowhdr_w = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain(std::iter::once(0))
            .max()
            .unwrap_or(0)
            .max(4);
        let col_ws: Vec<usize> = self
            .columns
            .iter()
            .enumerate()
            .map(|(c, h)| {
                self.cells
                    .iter()
                    .map(|row| format!("{}", row[c]).len())
                    .chain(std::iter::once(h.len()))
                    .max()
                    .unwrap_or(4)
            })
            .collect();
        write!(f, "{:rowhdr_w$}", "")?;
        for (c, h) in self.columns.iter().enumerate() {
            write!(f, "  {:>w$}", h, w = col_ws[c])?;
        }
        for p in &self.property_names {
            write!(f, "  {p}")?;
        }
        writeln!(f)?;
        for (r, rh) in self.rows.iter().enumerate() {
            write!(f, "{:rowhdr_w$}", rh)?;
            for (c, _) in self.columns.iter().enumerate() {
                write!(
                    f,
                    "  {:>w$}",
                    format!("{}", self.cells[r][c]),
                    w = col_ws[c]
                )?;
            }
            if let Some(props) = self.row_properties.get(r) {
                for p in props {
                    write!(f, "  {p}")?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Grid {
        Grid {
            columns: vec!["Q1".into(), "Q2".into()],
            rows: vec!["NY".into(), "MA".into()],
            cells: vec![
                vec![CellValue::Num(60.0), CellValue::Num(30.0)],
                vec![CellValue::Num(80.0), CellValue::Null],
            ],
            row_properties: vec![vec![], vec![]],
            property_names: vec![],
        }
    }

    #[test]
    fn lookup_and_totals() {
        let g = grid();
        assert_eq!(g.cell("NY", "Q1"), Some(CellValue::Num(60.0)));
        assert_eq!(g.cell("MA", "Q2"), Some(CellValue::Null));
        assert_eq!(g.cell("TX", "Q1"), None);
        assert_eq!(g.total(), 170.0);
        assert_eq!(g.present_count(), 3);
        assert_eq!(g.width(), 2);
        assert_eq!(g.height(), 2);
    }

    #[test]
    fn csv_renders_bottom_as_empty_and_escapes() {
        let mut g = grid();
        g.rows[0] = "NY, up\"town".into();
        let csv = g.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "row,Q1,Q2");
        assert!(lines[1].starts_with("\"NY, up\"\"town\",60,30"));
        assert_eq!(lines[2], "MA,80,");
    }

    #[test]
    fn display_renders_headers_and_bottom() {
        let s = grid().to_string();
        assert!(s.contains("Q1"));
        assert!(s.contains("NY"));
        assert!(s.contains('⊥'));
    }
}
