//! The [`Cube`]: a sealed schema plus chunked leaf-cell storage.

use crate::error::CubeError;
use crate::rules::RuleSet;
use crate::Result;
use olap_store::{
    BufferPool, CellValue, Chunk, ChunkGeometry, ChunkId, FileStore, IoSnapshot, MemStore,
    PoolStats,
};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

pub use olap_store::store::IoSnapshot as CubeIoSnapshot;

use olap_model::Schema;

/// Where a cube's chunks live.
#[derive(Debug, Clone)]
pub enum StoreBackend {
    /// In-process `BTreeMap` store.
    Memory,
    /// Single-file store at the given path (created/truncated).
    File(PathBuf),
    /// Opens an existing single-file store at the given path, keeping
    /// its contents; staged builder cells are *discarded* — the file is
    /// the source of truth. This is how a replication follower mounts a
    /// copied base image: the dataset definition rebuilds the schema
    /// and geometry deterministically, while the chunk bytes (base
    /// image plus any replicated flushes) come from the file.
    Attach(PathBuf),
}

/// Builds a [`Cube`] by staging cells in memory, then compacting and
/// writing chunks to the chosen backend.
pub struct CubeBuilder {
    schema: Arc<Schema>,
    geometry: ChunkGeometry,
    backend: StoreBackend,
    pool_capacity: usize,
    dense_threshold: f64,
    rules: RuleSet,
    staged: BTreeMap<ChunkId, Chunk>,
}

impl CubeBuilder {
    /// Starts a builder. `extents[i]` is the chunk extent along dimension
    /// `i`; the schema must already be sealed.
    pub fn new(schema: Arc<Schema>, extents: Vec<u32>) -> Result<Self> {
        let lens = schema.shape();
        let geometry = ChunkGeometry::new(lens, extents)?;
        Ok(CubeBuilder {
            schema,
            geometry,
            backend: StoreBackend::Memory,
            pool_capacity: 1024,
            dense_threshold: 0.4,
            rules: RuleSet::default(),
            staged: BTreeMap::new(),
        })
    }

    /// Uniform chunk extent along every axis.
    pub fn with_uniform_extent(schema: Arc<Schema>, extent: u32) -> Result<Self> {
        let n = schema.dim_count();
        CubeBuilder::new(schema, vec![extent; n])
    }

    /// Chooses the storage backend (default: memory).
    pub fn backend(mut self, b: StoreBackend) -> Self {
        self.backend = b;
        self
    }

    /// Buffer-pool capacity in chunks (default 1024).
    pub fn pool_capacity(mut self, n: usize) -> Self {
        self.pool_capacity = n;
        self
    }

    /// Density at or above which chunks stay dense (default 0.4).
    pub fn dense_threshold(mut self, t: f64) -> Self {
        self.dense_threshold = t;
        self
    }

    /// Installs the calculation rules.
    pub fn rules(mut self, rules: RuleSet) -> Self {
        self.rules = rules;
        self
    }

    /// Stages a leaf-cell value at global slot coordinates.
    pub fn set(&mut self, cell: &[u32], v: CellValue) -> Result<()> {
        self.geometry.check_cell(cell)?;
        let (id, off) = self.geometry.split_cell(cell);
        let chunk = self.staged.entry(id).or_insert_with(|| {
            Chunk::new_dense(self.geometry.chunk_shape(&self.geometry.chunk_coord(id)))
        });
        chunk.set(off, v);
        Ok(())
    }

    /// Stages a numeric value (convenience).
    pub fn set_num(&mut self, cell: &[u32], v: f64) -> Result<()> {
        self.set(cell, CellValue::num(v))
    }

    /// Number of staged chunks so far.
    pub fn staged_chunks(&self) -> usize {
        self.staged.len()
    }

    /// Compacts staged chunks and writes them to the backend.
    pub fn finish(self) -> Result<Cube> {
        let attached = matches!(self.backend, StoreBackend::Attach(_));
        let mut store: Box<dyn olap_store::ChunkStore> = match &self.backend {
            StoreBackend::Memory => Box::new(MemStore::new()),
            StoreBackend::File(path) => Box::new(FileStore::create(path)?),
            StoreBackend::Attach(path) => Box::new(FileStore::open(path)?),
        };
        if !attached {
            for (id, mut chunk) in self.staged {
                if chunk.present_count() == 0 {
                    continue; // all-⊥ chunks are implicit
                }
                chunk.compact(self.dense_threshold);
                store.write(id, &chunk)?;
            }
        }
        Ok(Cube {
            schema: self.schema,
            geometry: self.geometry,
            pool: BufferPool::new(store, self.pool_capacity),
            rules: self.rules,
            dense_threshold: self.dense_threshold,
        })
    }
}

/// A multidimensional cube: leaf cells over the schema's axes, chunked.
///
/// Cells not explicitly stored are ⊥. Reads go through an internal
/// [`BufferPool`]; the pool (and its statistics) are reachable via
/// [`Cube::with_pool`] for the Section 5 executors.
pub struct Cube {
    schema: Arc<Schema>,
    geometry: ChunkGeometry,
    pool: BufferPool,
    rules: RuleSet,
    dense_threshold: f64,
}

impl std::fmt::Debug for Cube {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cube")
            .field("shape", &self.geometry.lens())
            .field("chunks", &self.chunk_count())
            .finish()
    }
}

impl Cube {
    /// Starts a [`CubeBuilder`].
    pub fn builder(schema: Arc<Schema>, extents: Vec<u32>) -> Result<CubeBuilder> {
        CubeBuilder::new(schema, extents)
    }

    /// The schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The chunk geometry.
    pub fn geometry(&self) -> &ChunkGeometry {
        &self.geometry
    }

    /// The calculation rules.
    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }

    /// Replaces the rule set (rules are metadata, not cell data).
    pub fn set_rules(&mut self, rules: RuleSet) {
        self.rules = rules;
    }

    /// Density threshold used when writing chunks.
    pub fn dense_threshold(&self) -> f64 {
        self.dense_threshold
    }

    /// Reads a leaf cell by global slot coordinates.
    pub fn get(&self, cell: &[u32]) -> Result<CellValue> {
        self.geometry.check_cell(cell)?;
        let (id, off) = self.geometry.split_cell(cell);
        let pool = &self.pool;
        if !pool.contains(id) {
            return Ok(CellValue::Null);
        }
        let chunk = pool.get(id)?;
        Ok(chunk.get(off))
    }

    /// Writes a leaf cell (read-modify-write of its chunk). Not atomic
    /// against concurrent `set` calls on the same chunk; writers should
    /// be externally serialized (the parallel executors only read).
    pub fn set(&self, cell: &[u32], v: CellValue) -> Result<()> {
        self.geometry.check_cell(cell)?;
        let (id, off) = self.geometry.split_cell(cell);
        let pool = &self.pool;
        let mut chunk = if pool.contains(id) {
            (*pool.get(id)?).clone()
        } else {
            Chunk::new_dense(self.geometry.chunk_shape(&self.geometry.chunk_coord(id)))
        };
        chunk.set(off, v);
        pool.put(id, chunk)?;
        Ok(())
    }

    /// Fetches a chunk by id; missing chunks come back as all-⊥.
    pub fn chunk(&self, id: ChunkId) -> Result<Arc<Chunk>> {
        let pool = &self.pool;
        if !pool.contains(id) {
            let shape = self.geometry.chunk_shape(&self.geometry.chunk_coord(id));
            return Ok(Arc::new(Chunk::new_dense(shape)));
        }
        Ok(pool.get(id)?)
    }

    /// Whether a chunk is materialized.
    pub fn chunk_exists(&self, id: ChunkId) -> bool {
        self.pool.contains(id)
    }

    /// Ids of all materialized chunks.
    pub fn chunk_ids(&self) -> Vec<ChunkId> {
        self.pool.store().ids()
    }

    /// Number of materialized chunks.
    pub fn chunk_count(&self) -> usize {
        self.pool.store().chunk_count()
    }

    /// Runs a closure with access to the (thread-safe) buffer pool
    /// (executors, statistics readers).
    pub fn with_pool<R>(&self, f: impl FnOnce(&BufferPool) -> R) -> R {
        f(&self.pool)
    }

    /// Starts `n` background I/O workers on the pool so executors can
    /// issue [`Cube::prefetch`] hints. Idempotent; `n == 0` is a no-op.
    pub fn start_io_threads(&self, n: usize) {
        self.pool.start_io_threads(n);
    }

    /// Hints that `ids` will be read soon, letting the pool's I/O
    /// workers overlap the store reads with compute. A no-op without
    /// I/O workers ([`Cube::start_io_threads`]).
    pub fn prefetch(&self, ids: &[ChunkId]) {
        self.pool.prefetch(ids);
    }

    /// Snapshot of the backing store's I/O counters.
    pub fn io_snapshot(&self) -> IoSnapshot {
        self.pool.store().stats().snapshot()
    }

    /// Snapshot of the buffer pool's counters.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Resets pool and store counters.
    pub fn reset_stats(&self) {
        self.pool.reset_stats();
        self.pool.store().stats().reset();
    }

    /// Calls `f(cell, value)` for every stored non-⊥ leaf cell.
    pub fn for_each_present(&self, mut f: impl FnMut(&[u32], f64)) -> Result<()> {
        let ids = self.chunk_ids();
        let mut cell = Vec::with_capacity(self.geometry.ndims());
        for id in ids {
            let coord = self.geometry.chunk_coord(id);
            let chunk = self.chunk(id)?;
            for (off, v) in chunk.present_cells() {
                self.geometry.cell_of_local_into(&coord, off, &mut cell);
                f(&cell, v);
            }
        }
        Ok(())
    }

    /// Sum of non-⊥ leaf cells (sanity metric used by invariant tests).
    pub fn total_sum(&self) -> Result<f64> {
        let mut s = 0.0;
        self.for_each_present(|_, v| s += v)?;
        Ok(s)
    }

    /// Number of non-⊥ leaf cells.
    pub fn present_cell_count(&self) -> Result<u64> {
        let mut n = 0u64;
        self.for_each_present(|_, _| n += 1)?;
        Ok(n)
    }

    /// An empty cube with the same schema, geometry, and rules (memory
    /// backend) — the starting point for operators that rewrite cells.
    pub fn empty_like(&self) -> Cube {
        Cube {
            schema: Arc::clone(&self.schema),
            geometry: self.geometry.clone(),
            pool: BufferPool::new(Box::new(MemStore::new()), 1024),
            rules: self.rules.clone(),
            dense_threshold: self.dense_threshold,
        }
    }

    /// An empty cube for a *different* (e.g. split-extended) schema,
    /// carrying this cube's rules and chunk extents where they still fit.
    pub fn empty_for_schema(&self, schema: Arc<Schema>) -> Result<Cube> {
        let lens = schema.shape();
        let extents: Vec<u32> = self
            .geometry
            .extents()
            .iter()
            .copied()
            .chain(std::iter::repeat(8))
            .take(lens.len())
            .collect();
        let geometry = ChunkGeometry::new(lens, extents)?;
        Ok(Cube {
            schema,
            geometry,
            pool: BufferPool::new(Box::new(MemStore::new()), 1024),
            rules: self.rules.clone(),
            dense_threshold: self.dense_threshold,
        })
    }

    /// Writes a whole chunk (used by the chunked executors).
    pub fn put_chunk(&self, id: ChunkId, mut chunk: Chunk) -> Result<()> {
        chunk.compact(self.dense_threshold);
        self.pool.put(id, chunk)?;
        Ok(())
    }

    /// Flushes dirty pool frames to the backing store.
    pub fn flush(&self) -> Result<()> {
        self.pool.flush_all()?;
        Ok(())
    }

    /// Cell-by-cell equality with another cube of identical geometry.
    pub fn same_cells(&self, other: &Cube) -> Result<bool> {
        if self.geometry.lens() != other.geometry.lens() {
            return Ok(false);
        }
        let mut mine: BTreeMap<Vec<u32>, f64> = BTreeMap::new();
        self.for_each_present(|c, v| {
            mine.insert(c.to_vec(), v);
        })?;
        let mut theirs: BTreeMap<Vec<u32>, f64> = BTreeMap::new();
        other.for_each_present(|c, v| {
            theirs.insert(c.to_vec(), v);
        })?;
        Ok(mine == theirs)
    }

    pub(crate) fn check_rank(&self, got: usize) -> Result<()> {
        let expected = self.geometry.ndims();
        if got != expected {
            return Err(CubeError::BadCellRef { expected, got });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olap_model::{DimensionSpec, SchemaBuilder};

    fn small_schema() -> Arc<Schema> {
        Arc::new(
            SchemaBuilder::new()
                .dimension(
                    DimensionSpec::new("Time")
                        .ordered()
                        .leaves(&["Jan", "Feb", "Mar", "Apr"]),
                )
                .dimension(DimensionSpec::new("Product").leaves(&["TV", "Radio", "Web"]))
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn build_and_read_back() {
        let mut b = Cube::builder(small_schema(), vec![2, 2]).unwrap();
        b.set_num(&[0, 0], 10.0).unwrap();
        b.set_num(&[3, 2], 7.0).unwrap();
        let cube = b.finish().unwrap();
        assert_eq!(cube.get(&[0, 0]).unwrap(), CellValue::Num(10.0));
        assert_eq!(cube.get(&[3, 2]).unwrap(), CellValue::Num(7.0));
        assert_eq!(cube.get(&[1, 1]).unwrap(), CellValue::Null);
        // Cells in never-touched chunks are ⊥ too.
        assert_eq!(cube.get(&[2, 0]).unwrap(), CellValue::Null);
    }

    #[test]
    fn set_after_build() {
        let cube = Cube::builder(small_schema(), vec![2, 2])
            .unwrap()
            .finish()
            .unwrap();
        cube.set(&[1, 1], CellValue::num(5.0)).unwrap();
        assert_eq!(cube.get(&[1, 1]).unwrap(), CellValue::Num(5.0));
        cube.set(&[1, 1], CellValue::Null).unwrap();
        assert_eq!(cube.get(&[1, 1]).unwrap(), CellValue::Null);
    }

    #[test]
    fn for_each_present_visits_all() {
        let mut b = Cube::builder(small_schema(), vec![2, 2]).unwrap();
        b.set_num(&[0, 0], 1.0).unwrap();
        b.set_num(&[1, 2], 2.0).unwrap();
        b.set_num(&[3, 1], 3.0).unwrap();
        let cube = b.finish().unwrap();
        let mut seen = Vec::new();
        cube.for_each_present(|c, v| seen.push((c.to_vec(), v)))
            .unwrap();
        seen.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(
            seen,
            vec![(vec![0, 0], 1.0), (vec![1, 2], 2.0), (vec![3, 1], 3.0)]
        );
        assert_eq!(cube.total_sum().unwrap(), 6.0);
        assert_eq!(cube.present_cell_count().unwrap(), 3);
    }

    #[test]
    fn empty_chunks_not_materialized() {
        let mut b = Cube::builder(small_schema(), vec![2, 2]).unwrap();
        b.set(&[0, 0], CellValue::Null).unwrap();
        b.set_num(&[3, 2], 1.0).unwrap();
        let cube = b.finish().unwrap();
        assert_eq!(cube.chunk_count(), 1);
    }

    #[test]
    fn same_cells_detects_difference() {
        let build = |v: f64| {
            let mut b = Cube::builder(small_schema(), vec![2, 2]).unwrap();
            b.set_num(&[0, 0], v).unwrap();
            b.finish().unwrap()
        };
        let a = build(1.0);
        assert!(a.same_cells(&build(1.0)).unwrap());
        assert!(!a.same_cells(&build(2.0)).unwrap());
    }

    #[test]
    fn file_backend_roundtrip() {
        let mut path = std::env::temp_dir();
        path.push(format!("olap-cube-test-{}.dat", std::process::id()));
        let mut b = Cube::builder(small_schema(), vec![2, 2])
            .unwrap()
            .backend(StoreBackend::File(path.clone()));
        b.set_num(&[2, 1], 9.0).unwrap();
        let cube = b.finish().unwrap();
        assert_eq!(cube.get(&[2, 1]).unwrap(), CellValue::Num(9.0));
        assert!(cube.io_snapshot().bytes_written > 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn out_of_bounds_rejected() {
        let cube = Cube::builder(small_schema(), vec![2, 2])
            .unwrap()
            .finish()
            .unwrap();
        assert!(cube.get(&[4, 0]).is_err());
        assert!(cube.get(&[0]).is_err());
    }
}
