//! # olap-cube
//!
//! Cube computation on top of [`olap_store`]'s chunked arrays:
//!
//! * [`Cube`]: a sealed [`olap_model::Schema`] plus a chunked store of
//!   leaf cells, with point reads/writes and region aggregation;
//! * the **group-by lattice** and **minimum-memory spanning tree** of
//!   Zhao, Deshpande, Naughton (SIGMOD'97) — the algorithm the paper's
//!   Section 5 builds its perspective-cube evaluation on ([`lattice`]);
//! * **simultaneous chunked aggregation** computing every lattice group-by
//!   in one pass over the base chunks, cascading through the MMST
//!   ([`aggregate`]);
//! * the **rules** engine (paper Section 2): default aggregation per
//!   measure plus scoped formula rules like
//!   `"For Market = East, Margin = 0.93 * Sales - COGS"` ([`rules`],
//!   evaluated in [`eval`]).
//!
//! Non-leaf cells are *derived*: their values come from rules evaluated
//! over descendant leaf cells (the paper's simplifying assumption, which we
//! adopt). [`eval::CellEvaluator`] is the single implementation of that,
//! shared by queries and by the what-if operators' visual mode.

pub mod aggregate;
pub mod buc;
pub mod cube;
pub mod error;
pub mod eval;
pub mod lattice;
pub mod rules;
pub mod views;

pub use aggregate::{CubeAggregator, GroupByResult};
pub use buc::{buc, IcebergCube};
pub use cube::{Cube, CubeBuilder, StoreBackend};
pub use error::CubeError;
pub use eval::{CellEvaluator, Sel};
pub use lattice::{GroupByMask, Lattice, Mmst};
pub use rules::{AggFn, Expr, FormulaRule, RuleSet};
pub use views::{estimate_sizes, greedy_select_views, materialize, ViewSelection};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CubeError>;
