//! Cell evaluation: derived (non-leaf) cells, rollups, and formula rules.
//!
//! The paper assumes "all leaf level cells are base and all non-leaf cells
//! are derived", and that "the scope of a function for a non-leaf cell is
//! the set of its descendant leaf cells". [`CellEvaluator`] implements
//! exactly that contract, with formula rules taking precedence over rollup
//! for the measures they define.
//!
//! The evaluator deliberately separates *where the rules come from* and
//! *where the data comes from*: that split is the paper's Eval operator
//! `E(C¹, C²)` (Definition 4.6), which whatif-core uses to implement the
//! visual / non-visual modes.

use crate::cube::Cube;
use crate::error::CubeError;
use crate::rules::{Acc, AggFn, Expr, FormulaRule, RuleSet};
use crate::Result;
use olap_model::{AxisSlot, DimensionId, MemberId};
use olap_store::CellValue;

/// One coordinate of a cell reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sel {
    /// A specific axis slot (a leaf member, or a member *instance* on a
    /// varying dimension).
    Slot(u32),
    /// A member at any level. A non-leaf member selects its descendant
    /// slots; a leaf member of a varying dimension selects *all its
    /// instances* (so `Member(Joe)` aggregates `FTE/Joe` + `PTE/Joe` + …).
    Member(MemberId),
}

/// Maximum formula recursion before declaring a rule cycle.
const MAX_DEPTH: u32 = 32;

/// Evaluates cells of a cube under a rule set.
pub struct CellEvaluator<'a> {
    data: &'a Cube,
    rules: &'a RuleSet,
}

impl<'a> CellEvaluator<'a> {
    /// Evaluator using the cube's own rules — ordinary querying.
    pub fn new(cube: &'a Cube) -> Self {
        CellEvaluator {
            data: cube,
            rules: cube.rules(),
        }
    }

    /// Evaluator with rules from one cube and data from another — the Eval
    /// operator `E(C¹, C²)` (rules from `C¹`, scope over `C²`).
    pub fn with_rules(rules: &'a RuleSet, data: &'a Cube) -> Self {
        CellEvaluator { data, rules }
    }

    /// The value of the cell addressed by one selector per dimension.
    pub fn value(&self, sels: &[Sel]) -> Result<CellValue> {
        self.data.check_rank(sels.len())?;
        self.value_at(sels, 0)
    }

    fn value_at(&self, sels: &[Sel], depth: u32) -> Result<CellValue> {
        // Formula rules take precedence for the selected measure.
        if let Some(mdim) = self.rules.measure_dim() {
            if let Some(measure) = self.selected_member(mdim, sels) {
                for rule in self.rules.candidates(measure) {
                    if self.scope_matches(rule, sels) {
                        return self.eval_expr(&rule.expr, sels, mdim, depth);
                    }
                }
            }
        }
        // Otherwise: base read or rollup.
        let mut slot_lists = Vec::with_capacity(sels.len());
        for (i, sel) in sels.iter().enumerate() {
            let slots = self.slots_for(i, *sel)?;
            if slots.is_empty() {
                return Ok(CellValue::Null);
            }
            slot_lists.push(slots);
        }
        if slot_lists.iter().all(|l| l.len() == 1) {
            let cell: Vec<u32> = slot_lists.iter().map(|l| l[0]).collect();
            return self.data.get(&cell);
        }
        let measure = self
            .rules
            .measure_dim()
            .and_then(|mdim| self.selected_member(mdim, sels));
        let agg = self.rules.agg_for(measure);
        self.aggregate_region(&slot_lists, agg)
    }

    /// The single member selected on dimension `dim`, if the selector pins
    /// one down (a `Member` directly, or a `Slot` via its leaf member).
    fn selected_member(&self, dim: DimensionId, sels: &[Sel]) -> Option<MemberId> {
        match sels.get(dim.index())? {
            Sel::Member(m) => Some(*m),
            Sel::Slot(s) => Some(self.data.schema().slot_member(dim, AxisSlot(*s))),
        }
    }

    /// Does the cell fall inside the rule's scope?
    fn scope_matches(&self, rule: &FormulaRule, sels: &[Sel]) -> bool {
        let schema = self.data.schema();
        rule.scope
            .iter()
            .all(|&(dim, scope_member)| match sels.get(dim.index()) {
                None => false,
                Some(Sel::Slot(s)) => {
                    let leaf = schema.slot_member(dim, AxisSlot(*s));
                    leaf == scope_member
                        || schema
                            .slot_ancestors(dim, AxisSlot(*s))
                            .contains(&scope_member)
                }
                Some(Sel::Member(m)) => {
                    *m == scope_member || schema.dim(dim).is_ancestor(scope_member, *m)
                }
            })
    }

    fn eval_expr(
        &self,
        expr: &Expr,
        sels: &[Sel],
        mdim: DimensionId,
        depth: u32,
    ) -> Result<CellValue> {
        if depth >= MAX_DEPTH {
            let name = match self.selected_member(mdim, sels) {
                Some(m) => self.data.schema().dim(mdim).member_name(m).to_string(),
                None => "<unknown>".to_string(),
            };
            return Err(CubeError::RuleCycle { measure: name });
        }
        Ok(match expr {
            Expr::Const(c) => CellValue::num(*c),
            Expr::Measure(m) => {
                let mut sub = sels.to_vec();
                sub[mdim.index()] = Sel::Member(*m);
                self.value_at(&sub, depth + 1)?
            }
            Expr::Add(a, b) => self.binop(a, b, sels, mdim, depth, |x, y| Some(x + y))?,
            Expr::Sub(a, b) => self.binop(a, b, sels, mdim, depth, |x, y| Some(x - y))?,
            Expr::Mul(a, b) => self.binop(a, b, sels, mdim, depth, |x, y| Some(x * y))?,
            Expr::Div(a, b) => self.binop(a, b, sels, mdim, depth, |x, y| {
                if y == 0.0 {
                    None
                } else {
                    Some(x / y)
                }
            })?,
            Expr::Neg(a) => match self.eval_expr(a, sels, mdim, depth)? {
                CellValue::Num(x) => CellValue::num(-x),
                CellValue::Null => CellValue::Null,
            },
        })
    }

    fn binop(
        &self,
        a: &Expr,
        b: &Expr,
        sels: &[Sel],
        mdim: DimensionId,
        depth: u32,
        f: impl FnOnce(f64, f64) -> Option<f64>,
    ) -> Result<CellValue> {
        let va = self.eval_expr(a, sels, mdim, depth)?;
        let vb = self.eval_expr(b, sels, mdim, depth)?;
        Ok(match (va.as_f64(), vb.as_f64()) {
            (Some(x), Some(y)) => match f(x, y) {
                Some(v) => CellValue::num(v),
                None => CellValue::Null, // division by zero ⇒ ⊥
            },
            _ => CellValue::Null, // ⊥ propagates through arithmetic
        })
    }

    /// Resolves one selector to the ascending axis slots it covers.
    pub fn slots_for(&self, dim_index: usize, sel: Sel) -> Result<Vec<u32>> {
        let dim = DimensionId(dim_index as u32);
        let schema = self.data.schema();
        let len = schema.axis_len(dim);
        match sel {
            Sel::Slot(s) => {
                if s >= len {
                    return Err(CubeError::SlotOutOfRange {
                        dim: dim_index,
                        slot: s,
                        len,
                    });
                }
                Ok(vec![s])
            }
            Sel::Member(m) => {
                schema.dim(dim).try_member(m)?;
                Ok(schema
                    .slots_under(dim, m)
                    .into_iter()
                    .map(|s| s.0)
                    .collect())
            }
        }
    }

    /// Chunk-aware aggregation over a region (the cross product of the
    /// given per-dimension slot lists). Skips unmaterialized chunks.
    pub fn aggregate_region(&self, slots: &[Vec<u32>], agg: AggFn) -> Result<CellValue> {
        let acc = self.accumulate_region(slots)?;
        Ok(acc.finalize(agg))
    }

    /// Like [`CellEvaluator::aggregate_region`] but returns the raw
    /// accumulator (for callers composing several regions).
    pub fn accumulate_region(&self, slots: &[Vec<u32>]) -> Result<Acc> {
        let geom = self.data.geometry();
        let n = slots.len();
        let mut acc = Acc::new();
        if slots.iter().any(|l| l.is_empty()) {
            return Ok(acc);
        }
        // Group each dimension's slots by chunk coordinate.
        let mut groups: Vec<Vec<(u32, Vec<u32>)>> = Vec::with_capacity(n);
        for (i, list) in slots.iter().enumerate() {
            let extent = geom.extents()[i];
            let mut g: Vec<(u32, Vec<u32>)> = Vec::new();
            for &s in list {
                let cc = s / extent;
                match g.last_mut() {
                    Some((last_cc, locals)) if *last_cc == cc => locals.push(s - cc * extent),
                    _ => g.push((cc, vec![s - cc * extent])),
                }
            }
            groups.push(g);
        }
        // Odometer over per-dimension chunk groups.
        let mut gi = vec![0usize; n];
        let mut coord = vec![0u32; n];
        'outer: loop {
            for i in 0..n {
                coord[i] = groups[i][gi[i]].0;
            }
            let id = geom.chunk_id(&coord);
            if self.data.chunk_exists(id) {
                let chunk = self.data.chunk(id)?;
                let shape = chunk.shape().to_vec();
                // Odometer over local offsets inside the chunk.
                let mut li = vec![0usize; n];
                loop {
                    let mut off = 0u32;
                    for i in 0..n {
                        off = off * shape[i] + groups[i][gi[i]].1[li[i]];
                    }
                    acc.add_cell(chunk.get(off));
                    let mut d = n;
                    while d > 0 {
                        d -= 1;
                        li[d] += 1;
                        if li[d] < groups[d][gi[d]].1.len() {
                            break;
                        }
                        li[d] = 0;
                        if d == 0 {
                            // local odometer done
                            d = usize::MAX;
                            break;
                        }
                    }
                    if d == usize::MAX {
                        break;
                    }
                }
            }
            // Advance chunk-group odometer.
            let mut d = n;
            while d > 0 {
                d -= 1;
                gi[d] += 1;
                if gi[d] < groups[d].len() {
                    break;
                }
                gi[d] = 0;
                if d == 0 {
                    break 'outer;
                }
            }
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::FormulaRule;
    use olap_model::{DimensionSpec, Schema, SchemaBuilder};
    use std::sync::Arc;

    /// Markets {East: NY, MA; West: CA}, Measures {Sales, COGS, Margin,
    /// MarginPct}, 2 months.
    fn fixture() -> (Cube, Arc<Schema>) {
        let schema = Arc::new(
            SchemaBuilder::new()
                .dimension(
                    DimensionSpec::new("Market")
                        .tree(&[("East", &["NY", "MA"][..]), ("West", &["CA"])]),
                )
                .dimension(DimensionSpec::new("Time").ordered().leaves(&["Jan", "Feb"]))
                .dimension(DimensionSpec::new("Measures").measures().leaves(&[
                    "Sales",
                    "COGS",
                    "Margin",
                    "MarginPct",
                ]))
                .build()
                .unwrap(),
        );
        let mdim = schema.resolve_dimension("Measures").unwrap();
        let market = schema.resolve_dimension("Market").unwrap();
        let sales = schema.dim(mdim).resolve("Sales").unwrap();
        let cogs = schema.dim(mdim).resolve("COGS").unwrap();
        let margin = schema.dim(mdim).resolve("Margin").unwrap();
        let pct = schema.dim(mdim).resolve("MarginPct").unwrap();
        let east = schema.dim(market).resolve("East").unwrap();

        let mut rules = RuleSet::new();
        rules.set_measure_dim(mdim);
        // (1) Margin = Sales - COGS
        rules.add_formula(FormulaRule {
            target: margin,
            scope: vec![],
            expr: Expr::measure(sales).sub(Expr::measure(cogs)),
        });
        // (3) For Market = East, Margin = 0.93 * Sales - COGS
        rules.add_formula(FormulaRule {
            target: margin,
            scope: vec![(market, east)],
            expr: Expr::constant(0.93)
                .mul(Expr::measure(sales))
                .sub(Expr::measure(cogs)),
        });
        // (4) Margin% = Margin / COGS * 100
        rules.add_formula(FormulaRule {
            target: pct,
            scope: vec![],
            expr: Expr::measure(margin)
                .div(Expr::measure(cogs))
                .mul(Expr::constant(100.0)),
        });

        let mut b = Cube::builder(Arc::clone(&schema), vec![2, 2, 2])
            .unwrap()
            .rules(rules);
        // slots: Market [NY, MA, CA], Time [Jan, Feb], Measures [S, C, M, P]
        // Sales
        b.set_num(&[0, 0, 0], 100.0).unwrap(); // NY Jan
        b.set_num(&[1, 0, 0], 50.0).unwrap(); // MA Jan
        b.set_num(&[2, 0, 0], 80.0).unwrap(); // CA Jan
        b.set_num(&[0, 1, 0], 10.0).unwrap(); // NY Feb
                                              // COGS
        b.set_num(&[0, 0, 1], 40.0).unwrap(); // NY Jan
        b.set_num(&[1, 0, 1], 20.0).unwrap(); // MA Jan
        b.set_num(&[2, 0, 1], 30.0).unwrap(); // CA Jan
        (b.finish().unwrap(), schema)
    }

    fn sels(cube_schema: &Schema, market: &str, time: &str, measure: &str) -> Vec<Sel> {
        let md = cube_schema.resolve_dimension("Market").unwrap();
        let td = cube_schema.resolve_dimension("Time").unwrap();
        let xd = cube_schema.resolve_dimension("Measures").unwrap();
        vec![
            Sel::Member(cube_schema.dim(md).resolve(market).unwrap()),
            Sel::Member(cube_schema.dim(td).resolve(time).unwrap()),
            Sel::Member(cube_schema.dim(xd).resolve(measure).unwrap()),
        ]
    }

    #[test]
    fn leaf_read_through_members() {
        let (cube, schema) = fixture();
        let ev = CellEvaluator::new(&cube);
        assert_eq!(
            ev.value(&sels(&schema, "NY", "Jan", "Sales")).unwrap(),
            CellValue::Num(100.0)
        );
    }

    #[test]
    fn rollup_sums_leaves() {
        let (cube, schema) = fixture();
        let ev = CellEvaluator::new(&cube);
        // East Jan Sales = NY + MA = 150
        assert_eq!(
            ev.value(&sels(&schema, "East", "Jan", "Sales")).unwrap(),
            CellValue::Num(150.0)
        );
        // All markets, all time: 100+50+80+10 = 240
        assert_eq!(
            ev.value(&sels(&schema, "Market", "Time", "Sales")).unwrap(),
            CellValue::Num(240.0)
        );
    }

    #[test]
    fn global_formula_applies() {
        let (cube, schema) = fixture();
        let ev = CellEvaluator::new(&cube);
        // West (CA): plain Margin = 80 - 30 = 50.
        assert_eq!(
            ev.value(&sels(&schema, "CA", "Jan", "Margin")).unwrap(),
            CellValue::Num(50.0)
        );
    }

    #[test]
    fn scoped_formula_overrides_in_east() {
        let (cube, schema) = fixture();
        let ev = CellEvaluator::new(&cube);
        // NY (under East): Margin = 0.93*100 - 40 = 53.
        assert_eq!(
            ev.value(&sels(&schema, "NY", "Jan", "Margin")).unwrap(),
            CellValue::Num(53.0)
        );
        // East as a whole: 0.93*150 - 60 = 79.5.
        assert_eq!(
            ev.value(&sels(&schema, "East", "Jan", "Margin")).unwrap(),
            CellValue::Num(79.5)
        );
    }

    #[test]
    fn chained_formula_margin_pct() {
        let (cube, schema) = fixture();
        let ev = CellEvaluator::new(&cube);
        // CA: Margin% = 50/30*100.
        let v = ev
            .value(&sels(&schema, "CA", "Jan", "MarginPct"))
            .unwrap()
            .as_f64()
            .unwrap();
        assert!((v - 50.0 / 30.0 * 100.0).abs() < 1e-9);
    }

    #[test]
    fn division_by_zero_is_bottom() {
        let (cube, schema) = fixture();
        let ev = CellEvaluator::new(&cube);
        // NY Feb: Sales=10, COGS=⊥ ⇒ Margin ⊥ ⇒ Margin% ⊥.
        assert_eq!(
            ev.value(&sels(&schema, "NY", "Feb", "Margin")).unwrap(),
            CellValue::Null
        );
        assert_eq!(
            ev.value(&sels(&schema, "NY", "Feb", "MarginPct")).unwrap(),
            CellValue::Null
        );
    }

    #[test]
    fn rule_cycle_detected() {
        let (mut cube, schema) = fixture();
        let mdim = schema.resolve_dimension("Measures").unwrap();
        let sales = schema.dim(mdim).resolve("Sales").unwrap();
        let mut rules = cube.rules().clone();
        // Sales = Sales + 1 — direct cycle.
        rules.add_formula(FormulaRule {
            target: sales,
            scope: vec![],
            expr: Expr::measure(sales).add(Expr::constant(1.0)),
        });
        cube.set_rules(rules);
        let ev = CellEvaluator::new(&cube);
        assert!(matches!(
            ev.value(&sels(&schema, "NY", "Jan", "Sales")),
            Err(CubeError::RuleCycle { .. })
        ));
    }

    #[test]
    fn avg_override_per_measure() {
        let (mut cube, schema) = fixture();
        let mdim = schema.resolve_dimension("Measures").unwrap();
        let sales = schema.dim(mdim).resolve("Sales").unwrap();
        let mut rules = cube.rules().clone();
        rules.set_measure_agg(sales, AggFn::Avg);
        cube.set_rules(rules);
        let ev = CellEvaluator::new(&cube);
        // East Jan Sales avg = (100+50)/2.
        assert_eq!(
            ev.value(&sels(&schema, "East", "Jan", "Sales")).unwrap(),
            CellValue::Num(75.0)
        );
    }

    #[test]
    fn empty_region_is_bottom() {
        let (cube, schema) = fixture();
        let ev = CellEvaluator::new(&cube);
        assert_eq!(
            ev.value(&sels(&schema, "West", "Feb", "Sales")).unwrap(),
            CellValue::Null
        );
    }

    #[test]
    fn slot_selector_reads_directly() {
        let (cube, _) = fixture();
        let ev = CellEvaluator::new(&cube);
        assert_eq!(
            ev.value(&[Sel::Slot(0), Sel::Slot(0), Sel::Slot(0)])
                .unwrap(),
            CellValue::Num(100.0)
        );
        assert!(ev
            .value(&[Sel::Slot(99), Sel::Slot(0), Sel::Slot(0)])
            .is_err());
    }

    #[test]
    fn rank_checked() {
        let (cube, _) = fixture();
        let ev = CellEvaluator::new(&cube);
        assert!(matches!(
            ev.value(&[Sel::Slot(0)]),
            Err(CubeError::BadCellRef { .. })
        ));
    }
}
