//! Workload-aware view selection — the paper's Section 8 future work,
//! "workload aware view selection (à la \[7\])", where \[7\] is Harinarayan,
//! Rajaraman, Ullman, *Implementing Data Cubes Efficiently* (SIGMOD'96).
//!
//! The classic HRU greedy algorithm over the group-by lattice: starting
//! from only the base cube materialized, repeatedly materialize the view
//! with the largest *benefit* — the total query-cost reduction over all
//! lattice nodes, under the linear cost model (answering a group-by costs
//! the size of the smallest materialized ancestor). Workload weights bias
//! the benefit toward frequently-queried group-bys; HRU's guarantee (the
//! greedy solution is within 63% of optimal) carries over.
//!
//! [`ViewSelection::answer_plan`] then routes each query group-by to its cheapest
//! materialized ancestor, and [`materialize`] computes the chosen views
//! with the Zhao-style [`crate::CubeAggregator`].

use crate::aggregate::{CubeAggregator, GroupByResult};
use crate::cube::Cube;
use crate::lattice::{GroupByMask, Lattice};
use crate::Result;
use std::collections::HashMap;

/// The outcome of greedy view selection.
#[derive(Debug, Clone)]
pub struct ViewSelection {
    /// Views chosen, in pick order (the base cube is implicit and always
    /// available).
    pub chosen: Vec<GroupByMask>,
    /// The benefit each pick contributed under the cost model.
    pub benefits: Vec<f64>,
    /// Estimated row count per lattice node used by the model.
    pub sizes: HashMap<GroupByMask, u64>,
}

impl ViewSelection {
    /// Total estimated cost of answering one query per lattice node after
    /// materializing the chosen views.
    pub fn total_cost(&self, lattice: Lattice, weights: Option<&HashMap<GroupByMask, f64>>) -> f64 {
        lattice
            .proper_masks()
            .into_iter()
            .map(|q| {
                let w = weights.and_then(|w| w.get(&q)).copied().unwrap_or(1.0);
                w * self.answering_view_size(lattice, q) as f64
            })
            .sum()
    }

    fn answering_view_size(&self, lattice: Lattice, q: GroupByMask) -> u64 {
        let full = lattice.full();
        let mut best = self.sizes[&full];
        for &v in &self.chosen {
            if v & q == q && self.sizes[&v] < best {
                best = self.sizes[&v];
            }
        }
        best
    }

    /// The cheapest materialized ancestor that can answer `q` (the base
    /// cube when nothing better was chosen).
    pub fn answer_plan(&self, lattice: Lattice, q: GroupByMask) -> GroupByMask {
        let full = lattice.full();
        let mut best = full;
        let mut best_size = self.sizes[&full];
        for &v in &self.chosen {
            if v & q == q && self.sizes[&v] < best_size {
                best = v;
                best_size = self.sizes[&v];
            }
        }
        best
    }
}

/// Estimated row count of a group-by: the product of its retained axis
/// lengths, capped by the base cube's non-⊥ cell count when known (no
/// group-by has more rows than the base has cells).
pub fn estimate_sizes(
    lattice: Lattice,
    axis_lens: &[u32],
    base_cells: Option<u64>,
) -> HashMap<GroupByMask, u64> {
    let mut sizes = HashMap::new();
    for m in lattice.all_masks() {
        let mut size: u64 = lattice
            .dims_of(m)
            .into_iter()
            .map(|d| axis_lens[d] as u64)
            .product::<u64>()
            .max(1);
        if let Some(cap) = base_cells {
            size = size.min(cap.max(1));
        }
        sizes.insert(m, size);
    }
    sizes
}

/// HRU greedy selection of `k` views beyond the base cube.
///
/// `weights` gives per-group-by query frequencies (default 1.0 each) —
/// the "workload aware" part.
pub fn greedy_select_views(
    lattice: Lattice,
    sizes: &HashMap<GroupByMask, u64>,
    k: usize,
    weights: Option<&HashMap<GroupByMask, f64>>,
) -> ViewSelection {
    let full = lattice.full();
    // cost[q] = size of the smallest materialized ancestor of q.
    let mut cost: HashMap<GroupByMask, u64> = lattice
        .all_masks()
        .into_iter()
        .map(|q| (q, sizes[&full]))
        .collect();
    let weight =
        |q: GroupByMask| -> f64 { weights.and_then(|w| w.get(&q)).copied().unwrap_or(1.0) };
    let mut chosen = Vec::with_capacity(k);
    let mut benefits = Vec::with_capacity(k);
    for _ in 0..k {
        let mut best: Option<(GroupByMask, f64)> = None;
        for v in lattice.proper_masks() {
            if chosen.contains(&v) {
                continue;
            }
            let sv = sizes[&v];
            let mut benefit = 0.0;
            for q in lattice.all_masks() {
                if v & q == q && sv < cost[&q] {
                    benefit += weight(q) * (cost[&q] - sv) as f64;
                }
            }
            let better = match best {
                None => true,
                // Deterministic tie-break: larger benefit, then smaller
                // view, then smaller mask.
                Some((bv, bb)) => {
                    benefit > bb || (benefit == bb && (sizes[&v], v) < (sizes[&bv], bv))
                }
            };
            if better {
                best = Some((v, benefit));
            }
        }
        let Some((v, benefit)) = best else { break };
        if benefit <= 0.0 {
            break; // nothing left improves anything
        }
        for q in lattice.all_masks() {
            if v & q == q && sizes[&v] < cost[&q] {
                *cost.get_mut(&q).expect("all masks present") = sizes[&v];
            }
        }
        chosen.push(v);
        benefits.push(benefit);
    }
    ViewSelection {
        chosen,
        benefits,
        sizes: sizes.clone(),
    }
}

/// Materializes the selected views with one simultaneous chunked pass.
pub fn materialize(
    cube: &Cube,
    selection: &ViewSelection,
) -> Result<HashMap<GroupByMask, GroupByResult>> {
    if selection.chosen.is_empty() {
        return Ok(HashMap::new());
    }
    let agg = CubeAggregator::new(cube);
    let (results, _) = agg.compute(&selection.chosen)?;
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::AggFn;
    use olap_model::{DimensionSpec, SchemaBuilder};
    use std::sync::Arc;

    fn lattice3() -> (Lattice, HashMap<GroupByMask, u64>) {
        // Axis lens: A=100, B=10, C=2 — classic HRU-style asymmetry.
        let lattice = Lattice::new(3);
        let sizes = estimate_sizes(lattice, &[100, 10, 2], None);
        (lattice, sizes)
    }

    #[test]
    fn size_estimates_product_and_cap() {
        let (lattice, sizes) = lattice3();
        assert_eq!(sizes[&0b111], 2000);
        assert_eq!(sizes[&0b011], 1000); // A×B
        assert_eq!(sizes[&0b001], 100);
        assert_eq!(sizes[&0b000], 1);
        let capped = estimate_sizes(lattice, &[100, 10, 2], Some(500));
        assert_eq!(capped[&0b111], 500);
        assert_eq!(capped[&0b011], 500);
        assert_eq!(capped[&0b001], 100);
    }

    #[test]
    fn greedy_picks_high_benefit_views_first() {
        let (lattice, sizes) = lattice3();
        let sel = greedy_select_views(lattice, &sizes, 2, None);
        assert_eq!(sel.chosen.len(), 2);
        // BC (20 rows) improves its 4 subsets from 2000 to 20:
        // benefit 4 × 1980 = 7920 — the largest first pick. Then AC
        // (200 rows) improves AC and A: 2 × 1800 = 3600.
        assert_eq!(sel.chosen[0], 0b110);
        assert_eq!(sel.chosen[1], 0b101);
        assert!(sel.benefits[0] >= sel.benefits[1]);
    }

    #[test]
    fn costs_only_improve_with_more_views() {
        let (lattice, sizes) = lattice3();
        let mut prev = f64::INFINITY;
        for k in 0..6 {
            let sel = greedy_select_views(lattice, &sizes, k, None);
            let cost = sel.total_cost(lattice, None);
            assert!(cost <= prev, "k={k}: {cost} > {prev}");
            prev = cost;
        }
    }

    #[test]
    fn workload_weights_redirect_choices() {
        let (lattice, sizes) = lattice3();
        // A workload hammering the C group-by should pull BC or AC (or C)
        // ahead of the default AB pick.
        let mut weights = HashMap::new();
        weights.insert(0b100u32, 10_000.0); // C only
        let sel = greedy_select_views(lattice, &sizes, 1, Some(&weights));
        let v = sel.chosen[0];
        assert!(v & 0b100 == 0b100, "chosen view {v:b} must answer C");
        assert!(sizes[&v] < sizes[&lattice.full()]);
    }

    #[test]
    fn answer_plan_routes_to_cheapest_ancestor() {
        let (lattice, sizes) = lattice3();
        let sel = greedy_select_views(lattice, &sizes, 2, None);
        for q in lattice.proper_masks() {
            let v = sel.answer_plan(lattice, q);
            assert_eq!(v & q, q, "plan must be an ancestor");
            // No chosen view that answers q is smaller.
            for &c in &sel.chosen {
                if c & q == q {
                    assert!(sizes[&v] <= sizes[&c]);
                }
            }
        }
    }

    #[test]
    fn zero_benefit_stops_early() {
        let lattice = Lattice::new(2);
        // Degenerate: every group-by as big as the base — nothing helps.
        let mut sizes = HashMap::new();
        for m in lattice.all_masks() {
            sizes.insert(m, 100u64);
        }
        let sel = greedy_select_views(lattice, &sizes, 3, None);
        assert!(sel.chosen.is_empty());
    }

    #[test]
    fn materialized_views_answer_queries_exactly() {
        let schema = Arc::new(
            SchemaBuilder::new()
                .dimension(DimensionSpec::new("A").leaves(&["a0", "a1", "a2", "a3"]))
                .dimension(DimensionSpec::new("B").leaves(&["b0", "b1"]))
                .dimension(DimensionSpec::new("C").leaves(&["c0", "c1", "c2"]))
                .build()
                .unwrap(),
        );
        let mut b = Cube::builder(Arc::clone(&schema), vec![2, 2, 2]).unwrap();
        for a in 0..4u32 {
            for bb in 0..2u32 {
                for c in 0..3u32 {
                    b.set_num(&[a, bb, c], (a * 100 + bb * 10 + c) as f64)
                        .unwrap();
                }
            }
        }
        let cube = b.finish().unwrap();
        let lattice = Lattice::new(3);
        let sizes = estimate_sizes(lattice, &[4, 2, 3], None);
        let sel = greedy_select_views(lattice, &sizes, 2, None);
        let views = materialize(&cube, &sel).unwrap();
        assert_eq!(views.len(), sel.chosen.len());
        // A query answered from a view equals the direct aggregation.
        let agg = CubeAggregator::new(&cube);
        for q in lattice.proper_masks() {
            let plan = sel.answer_plan(lattice, q);
            if plan == lattice.full() || !views.contains_key(&plan) {
                continue;
            }
            let view = &views[&plan];
            // Re-aggregate the view down to q and compare to direct.
            let (direct, _) = agg.compute(&[q]).unwrap();
            let direct = &direct[&q];
            let q_dims = lattice.dims_of(q);
            // Walk every coordinate of q's result space.
            let shape: Vec<u32> = q_dims.iter().map(|&d| [4u32, 2, 3][d]).collect();
            let mut idx = vec![0u32; shape.len()];
            loop {
                // Sum the view rows projecting onto idx.
                let mut total = crate::rules::Acc::new();
                let vshape: Vec<u32> = view.dims().iter().map(|&d| [4u32, 2, 3][d]).collect();
                let mut vidx = vec![0u32; vshape.len()];
                'view: loop {
                    let matches = q_dims.iter().enumerate().all(|(qi, qd)| {
                        let pos = view.dims().iter().position(|vd| vd == qd).unwrap();
                        vidx[pos] == idx[qi]
                    });
                    if matches {
                        total.merge(view.acc(&vidx));
                    }
                    let mut d = vshape.len();
                    while d > 0 {
                        d -= 1;
                        vidx[d] += 1;
                        if vidx[d] < vshape[d] {
                            break;
                        }
                        vidx[d] = 0;
                        if d == 0 {
                            break 'view;
                        }
                    }
                    if vshape.is_empty() {
                        break;
                    }
                }
                assert_eq!(
                    total.finalize(AggFn::Sum),
                    direct.value(&idx, AggFn::Sum),
                    "mask {q:b} via view {plan:b} at {idx:?}"
                );
                let mut d = shape.len();
                let mut done = shape.is_empty();
                while d > 0 {
                    d -= 1;
                    idx[d] += 1;
                    if idx[d] < shape[d] {
                        break;
                    }
                    idx[d] = 0;
                    if d == 0 {
                        done = true;
                    }
                }
                if done {
                    break;
                }
            }
        }
    }
}
