//! Simultaneous chunked aggregation (Zhao et al., SIGMOD'97).
//!
//! One pass over the base chunks — in a chosen dimension order — computes
//! every requested group-by at once. Group-bys cascade through the
//! [`Mmst`]: each node aggregates from its tree parent's *completed*
//! chunks, holding partial chunk buffers exactly as long as Zhao's memory
//! rule predicts. The aggregator reports the observed peak buffer
//! occupancy so tests (and the dimension-order ablation) can check the
//! prediction.
//!
//! Accumulators carry (sum, count, min, max) end-to-end, so the algebraic
//! AVG stays correct through arbitrary cascade depth.

use crate::cube::Cube;
use crate::lattice::{GroupByMask, Lattice, Mmst};
use crate::rules::{Acc, AggFn};
use crate::Result;
use olap_store::{CellValue, ChunkGeometry, ChunkId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// One completed group-by: a dense array of accumulators over the
/// retained dimensions' full axes.
#[derive(Debug, Clone)]
pub struct GroupByResult {
    mask: GroupByMask,
    dims: Vec<usize>,
    shape: Vec<u32>,
    accs: Vec<Acc>,
}

impl GroupByResult {
    fn new(mask: GroupByMask, dims: Vec<usize>, shape: Vec<u32>) -> Self {
        let n: usize = shape.iter().map(|&s| s as usize).product::<usize>().max(1);
        GroupByResult {
            mask,
            dims,
            shape,
            accs: vec![Acc::new(); n],
        }
    }

    /// The mask this result answers.
    pub fn mask(&self) -> GroupByMask {
        self.mask
    }

    /// Retained dimensions, ascending.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Axis lengths of the retained dimensions.
    pub fn shape(&self) -> &[u32] {
        &self.shape
    }

    #[inline]
    fn index(&self, coords: &[u32]) -> usize {
        debug_assert_eq!(coords.len(), self.shape.len());
        let mut idx = 0usize;
        for (i, &c) in coords.iter().enumerate() {
            debug_assert!(c < self.shape[i]);
            idx = idx * self.shape[i] as usize + c as usize;
        }
        idx
    }

    /// The raw accumulator at retained-dimension coordinates.
    pub fn acc(&self, coords: &[u32]) -> &Acc {
        &self.accs[self.index(coords)]
    }

    /// The finalized value at retained-dimension coordinates.
    pub fn value(&self, coords: &[u32], agg: AggFn) -> CellValue {
        self.acc(coords).finalize(agg)
    }

    /// Sum over every cell of the group-by (grand-total sanity check —
    /// equal for every mask when the default aggregate is SUM).
    pub fn grand_total(&self) -> f64 {
        self.accs.iter().map(|a| a.sum).sum()
    }
}

/// Observed execution metrics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AggregationReport {
    /// Peak simultaneously-live buffer cells across all group-bys. In
    /// parallel mode this is the sum of the per-worker peaks — an upper
    /// bound on simultaneous residency (workers need not peak together);
    /// `concurrent_peak_cells` is the exact mark.
    pub peak_buffer_cells: u64,
    /// Peak simultaneously-live chunk buffers across all group-bys
    /// (summed over workers in parallel mode, like `peak_buffer_cells`).
    pub peak_buffer_chunks: u64,
    /// Base chunks scanned (materialized or implicit ⊥; summed over
    /// passes for the multi-pass fallback, and over workers in parallel
    /// mode — each worker streams the base once).
    pub base_chunks_scanned: u64,
    /// Number of passes over the input (1 unless a memory budget forced
    /// Zhao's multi-pass fallback).
    pub passes: u64,
    /// Peak live buffer cells observed by each worker thread. Empty in
    /// serial mode; element-wise maxed across passes in multi-pass runs.
    pub per_thread_peak_cells: Vec<u64>,
    /// True concurrent high-water mark of live buffer cells: every
    /// worker adds and subtracts on one shared gauge, and the peak is
    /// taken atomically (`fetch_max`), so this is the largest number of
    /// cells simultaneously resident across the whole pool. Equals
    /// `peak_buffer_cells` in serial mode; in parallel mode it sits
    /// between `max_worker_peak_cells()` and the summed
    /// `peak_buffer_cells` (workers need not peak together). Maxed
    /// across passes in multi-pass runs.
    pub concurrent_peak_cells: u64,
}

impl AggregationReport {
    /// Largest single-worker peak of live buffer cells — the figure
    /// comparable to a serial run's `peak_buffer_cells` (which in
    /// parallel mode sums the workers instead). Equals
    /// `peak_buffer_cells` in serial mode.
    pub fn max_worker_peak_cells(&self) -> u64 {
        self.per_thread_peak_cells
            .iter()
            .copied()
            .max()
            .unwrap_or(self.peak_buffer_cells)
    }
}

/// In-flight chunk buffer of one group-by node.
struct Buffer {
    accs: Vec<Acc>,
    shape: Vec<u32>,
    seen: u32,
}

/// One group-by node of the cascade.
struct Node {
    mask: GroupByMask,
    /// Retained dims, ascending.
    dims: Vec<usize>,
    /// Indices of tree children participating in this computation.
    children: Vec<usize>,
    /// Parent chunks contributing to each of this node's chunks.
    expected: u32,
    /// Live partial chunks, keyed by this node's chunk-grid coordinate.
    buffers: HashMap<Vec<u32>, Buffer>,
    /// Completed output (only for requested masks).
    result: Option<GroupByResult>,
}

/// A completed chunk travelling down the cascade.
struct Block {
    /// Dimensions the coordinates below range over (the emitting node's).
    dims: Vec<usize>,
    /// Chunk-grid coordinate over `dims`.
    chunk_coord: Vec<u32>,
    /// Non-⊥ cells: global coordinates over `dims`, with accumulators.
    cells: Vec<(Vec<u32>, Acc)>,
}

/// A node's shape in the cascade plan, shared (read-only) by every
/// worker; each worker instantiates its own [`Node`]s from these.
struct NodeSpec {
    mask: GroupByMask,
    dims: Vec<usize>,
    children: Vec<usize>,
    expected: u32,
}

/// Computes group-bys of a cube's leaf cells in one chunked pass.
pub struct CubeAggregator<'a> {
    cube: &'a Cube,
    order: Vec<usize>,
    threads: usize,
    prefetch: usize,
}

impl<'a> CubeAggregator<'a> {
    /// Aggregator with the minimum-memory (ascending-cardinality) order.
    pub fn new(cube: &'a Cube) -> Self {
        let order = crate::lattice::min_memory_order(cube.geometry());
        CubeAggregator {
            cube,
            order,
            threads: 1,
            prefetch: 0,
        }
    }

    /// Aggregator with an explicit read order (`order[0]` fastest).
    pub fn with_order(cube: &'a Cube, order: Vec<usize>) -> Self {
        assert_eq!(order.len(), cube.geometry().ndims());
        CubeAggregator {
            cube,
            order,
            threads: 1,
            prefetch: 0,
        }
    }

    /// Sets the parallelism degree. `1` (the default) runs the serial
    /// cascade; `n ≥ 2` partitions the MMST's root subtrees across up to
    /// `n` worker threads, each streaming the base chunks with a private
    /// buffer map (the `(sum, count, min, max)` accumulators make every
    /// merge associative, and each requested mask belongs to exactly one
    /// subtree, so no cross-worker merging is needed).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the prefetch lookahead: during the scan, the next `k` chunk
    /// ids of the current slice are hinted to the cube's buffer pool so
    /// its I/O workers overlap reads with aggregation. `0` (the default)
    /// issues no hints and is bit-identical to no prefetching; `k ≥ 1`
    /// only changes I/O timing, never results. Requires
    /// [`Cube::start_io_threads`] to have any effect.
    pub fn with_prefetch(mut self, k: usize) -> Self {
        self.prefetch = k;
        self
    }

    /// The read order in use.
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// The configured prefetch lookahead.
    pub fn prefetch(&self) -> usize {
        self.prefetch
    }

    /// The configured parallelism degree.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Zhao et al.'s multi-pass fallback: "If the available memory falls
    /// short of the requirement determined from the MMST, then instead of
    /// one pass, we must make multiple passes over the input cube."
    /// Splits the requested masks into budget-respecting passes (see
    /// [`Mmst::plan_passes`]) and runs each as its own scan.
    pub fn compute_with_budget(
        &self,
        masks: &[GroupByMask],
        budget_cells: u64,
    ) -> Result<(HashMap<GroupByMask, GroupByResult>, AggregationReport)> {
        let geom = self.cube.geometry();
        let mmst = Mmst::build(geom, &self.order);
        let passes = mmst.plan_passes(masks, budget_cells)?;
        let mut out = HashMap::new();
        let mut report = AggregationReport::default();
        for pass in &passes {
            let (results, r) = self.compute(pass)?;
            out.extend(results);
            report.peak_buffer_cells = report.peak_buffer_cells.max(r.peak_buffer_cells);
            report.peak_buffer_chunks = report.peak_buffer_chunks.max(r.peak_buffer_chunks);
            report.concurrent_peak_cells =
                report.concurrent_peak_cells.max(r.concurrent_peak_cells);
            report.base_chunks_scanned += r.base_chunks_scanned;
            for (i, &v) in r.per_thread_peak_cells.iter().enumerate() {
                if i < report.per_thread_peak_cells.len() {
                    report.per_thread_peak_cells[i] = report.per_thread_peak_cells[i].max(v);
                } else {
                    report.per_thread_peak_cells.push(v);
                }
            }
        }
        report.passes = passes.len() as u64;
        Ok((out, report))
    }

    /// Computes the requested group-bys (cascading through any MMST
    /// ancestors needed), returning results for exactly the requested
    /// masks plus execution metrics.
    pub fn compute(
        &self,
        masks: &[GroupByMask],
    ) -> Result<(HashMap<GroupByMask, GroupByResult>, AggregationReport)> {
        let geom = self.cube.geometry();
        let lattice = Lattice::new(geom.ndims());
        let full = lattice.full();
        let specs = self.build_specs(masks, &lattice, full);
        let root_children = specs[0].children.clone();

        let workers = self.threads.min(root_children.len().max(1));
        let (mut out, mut report) = if workers <= 1 {
            // Serial path: one pass, every subtree delivered in turn.
            let mut nodes = self.instantiate(&specs, masks, full);
            let gauge = Gauge::default();
            let mut report = self.scan(&mut nodes, &root_children, &gauge)?;
            report.concurrent_peak_cells = gauge.peak();
            let mut out = HashMap::new();
            for node in nodes.iter_mut() {
                if let Some(r) = node.result.take() {
                    out.insert(node.mask, r);
                }
            }
            (out, report)
        } else {
            self.compute_parallel(&specs, &root_children, masks, full, workers)?
        };
        report.passes = 1;
        // The full mask, if requested, is the base cube itself.
        if masks.contains(&full) {
            let dims: Vec<usize> = (0..geom.ndims()).collect();
            let mut r = GroupByResult::new(full, dims, geom.lens().to_vec());
            self.cube.for_each_present(|cell, v| {
                let idx = r.index(cell);
                r.accs[idx].add(v);
            })?;
            out.insert(full, r);
        }
        Ok((out, report))
    }

    /// Builds the cascade plan: the closure of the requested masks under
    /// MMST parents, root first, with tree children and per-chunk
    /// completion counts. `specs[0]` is always the full mask.
    fn build_specs(
        &self,
        masks: &[GroupByMask],
        lattice: &Lattice,
        full: GroupByMask,
    ) -> Vec<NodeSpec> {
        let geom = self.cube.geometry();
        let mmst = Mmst::build(geom, &self.order);

        let mut needed: Vec<GroupByMask> = vec![full];
        let mut mark = vec![false; 1usize << lattice.ndims()];
        mark[full as usize] = true;
        for &m in masks {
            let mut chain = Vec::new();
            let mut cur = m;
            while !mark[cur as usize] {
                mark[cur as usize] = true;
                chain.push(cur);
                match mmst.parent(cur) {
                    Some(p) => cur = p,
                    None => break,
                }
            }
            needed.extend(chain.into_iter().rev());
        }
        needed.sort_unstable_by_key(|m| std::cmp::Reverse(m.count_ones()));

        let mut index_of: HashMap<GroupByMask, usize> = HashMap::new();
        let mut specs: Vec<NodeSpec> = Vec::with_capacity(needed.len());
        for &m in &needed {
            index_of.insert(m, specs.len());
            specs.push(NodeSpec {
                mask: m,
                dims: lattice.dims_of(m),
                children: Vec::new(),
                expected: 0,
            });
        }
        for i in 1..specs.len() {
            let m = specs[i].mask;
            let p = mmst.parent(m).expect("non-root has a parent");
            let pi = index_of[&p];
            specs[pi].children.push(i);
            let diff = p & !m;
            specs[i].expected = lattice
                .dims_of(diff)
                .into_iter()
                .map(|d| geom.grid()[d])
                .product::<u32>()
                .max(1);
        }
        specs
    }

    /// Materializes fresh (empty) nodes from the plan — one set per
    /// worker, so buffer maps are thread-private.
    fn instantiate(
        &self,
        specs: &[NodeSpec],
        masks: &[GroupByMask],
        full: GroupByMask,
    ) -> Vec<Node> {
        let geom = self.cube.geometry();
        specs
            .iter()
            .map(|s| {
                let shape: Vec<u32> = s.dims.iter().map(|&d| geom.lens()[d]).collect();
                let requested = masks.contains(&s.mask) && s.mask != full;
                Node {
                    mask: s.mask,
                    dims: s.dims.clone(),
                    children: s.children.clone(),
                    expected: s.expected,
                    buffers: HashMap::new(),
                    result: requested.then(|| GroupByResult::new(s.mask, s.dims.clone(), shape)),
                }
            })
            .collect()
    }

    /// Streams every base chunk in the chosen order, delivering each
    /// block to the root children in `deliver_to` only. Implicit (all-⊥)
    /// chunks are announced too: children count completions per parent
    /// chunk.
    fn scan(
        &self,
        nodes: &mut [Node],
        deliver_to: &[usize],
        gauge: &Gauge,
    ) -> Result<AggregationReport> {
        let geom = self.cube.geometry();
        let mut exec = Exec {
            geom,
            live_cells: 0,
            live_chunks: 0,
            gauge,
            report: AggregationReport::default(),
        };
        let all_dims: Vec<usize> = (0..geom.ndims()).collect();
        // With prefetching on, materialize the scan order once up front
        // so the next-K chunk ids can be hinted ahead of each read (the
        // odometer iterator cannot be cloned to peek ahead).
        let lookahead: Vec<ChunkId> = if self.prefetch > 0 {
            geom.chunks_in_order(&self.order)
                .map(|c| geom.chunk_id(&c))
                .collect()
        } else {
            Vec::new()
        };
        let mut hinted = 0usize; // lookahead[..hinted] already issued
        for (pos, coord) in geom.chunks_in_order(&self.order).enumerate() {
            if self.prefetch > 0 {
                let end = (pos + 1 + self.prefetch).min(lookahead.len());
                let fresh_from = hinted.max(pos + 1);
                if end > fresh_from {
                    let fresh: Vec<ChunkId> = lookahead[fresh_from..end]
                        .iter()
                        .copied()
                        .filter(|&id| self.cube.chunk_exists(id))
                        .collect();
                    hinted = end;
                    self.cube.prefetch(&fresh);
                }
            }
            exec.report.base_chunks_scanned += 1;
            let id = geom.chunk_id(&coord);
            let mut cells = Vec::new();
            if self.cube.chunk_exists(id) {
                let chunk = self.cube.chunk(id)?;
                cells.reserve(chunk.present_count() as usize);
                // Run-based scan: the offset→coordinate decode (a chain
                // of divisions per cell) happens once per run. Splitting
                // at the last axis with len > 1 keeps runs long even when
                // trailing axes are singletons; within a run only that
                // fast axis varies (everything after it has length 1).
                let fast = geom.fast_axis();
                let mut runs = geom.runs_from(&coord, fast);
                while let Some((base, start, len)) = runs.next_run() {
                    if chunk.present_in_range(start, len) == 0 {
                        continue;
                    }
                    let base = base.to_vec();
                    chunk.for_each_present_in_range(start, len, |off, v| {
                        let mut cell = base.clone();
                        cell[fast] += off - start;
                        let mut acc = Acc::new();
                        acc.add(v);
                        cells.push((cell, acc));
                    });
                }
            }
            let block = Block {
                dims: all_dims.clone(),
                chunk_coord: coord,
                cells,
            };
            for &c in deliver_to {
                exec.deliver(nodes, c, &block);
            }
        }
        for node in &nodes[1..] {
            debug_assert!(
                node.buffers.is_empty(),
                "group-by {:b} left {} incomplete buffers",
                node.mask,
                node.buffers.len()
            );
        }
        Ok(exec.report)
    }

    /// Parallel cascade: root subtrees are disjoint (every non-full mask
    /// hangs under exactly one child of the root), so they partition
    /// round-robin across `workers` scoped threads. Each worker streams
    /// the base chunks itself (the buffer pool is safe for concurrent
    /// readers) into a private node set, and hands back results for its
    /// subtrees only; the root merge is a disjoint union.
    fn compute_parallel(
        &self,
        specs: &[NodeSpec],
        root_children: &[usize],
        masks: &[GroupByMask],
        full: GroupByMask,
        workers: usize,
    ) -> Result<(HashMap<GroupByMask, GroupByResult>, AggregationReport)> {
        let mut assigned: Vec<Vec<usize>> = vec![Vec::new(); workers];
        for (i, &c) in root_children.iter().enumerate() {
            assigned[i % workers].push(c);
        }
        let gauge = Gauge::default();
        let parts: Vec<Result<(HashMap<GroupByMask, GroupByResult>, AggregationReport)>> =
            std::thread::scope(|s| {
                let handles: Vec<_> = assigned
                    .iter()
                    .map(|mine| {
                        let gauge = &gauge;
                        s.spawn(move || {
                            let mut nodes = self.instantiate(specs, masks, full);
                            let report = self.scan(&mut nodes, mine, gauge)?;
                            let mut out = HashMap::new();
                            let mut stack = mine.clone();
                            while let Some(ni) = stack.pop() {
                                stack.extend_from_slice(&nodes[ni].children);
                                if let Some(r) = nodes[ni].result.take() {
                                    out.insert(nodes[ni].mask, r);
                                }
                            }
                            Ok((out, report))
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("aggregation worker panicked"))
                    .collect()
            });
        let mut out = HashMap::new();
        let mut report = AggregationReport::default();
        for part in parts {
            let (results, r) = part?;
            out.extend(results);
            report.peak_buffer_cells += r.peak_buffer_cells;
            report.peak_buffer_chunks += r.peak_buffer_chunks;
            report.base_chunks_scanned += r.base_chunks_scanned;
            report.per_thread_peak_cells.push(r.peak_buffer_cells);
        }
        report.concurrent_peak_cells = gauge.peak();
        Ok((out, report))
    }
}

/// Shared high-water gauge for live buffer cells. Every worker adds and
/// subtracts on the same `cur` counter, so `peak` captures the largest
/// *simultaneous* residency across the whole pool — unlike the summed
/// per-worker peaks, which assume all workers peak at once.
#[derive(Default)]
struct Gauge {
    cur: AtomicU64,
    peak: AtomicU64,
}

impl Gauge {
    fn add(&self, n: u64) {
        let now = self.cur.fetch_add(n, Ordering::Relaxed) + n;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    fn sub(&self, n: u64) {
        self.cur.fetch_sub(n, Ordering::Relaxed);
    }

    fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }
}

/// Mutable execution state threaded through the cascade.
struct Exec<'g> {
    geom: &'g ChunkGeometry,
    live_cells: u64,
    live_chunks: u64,
    gauge: &'g Gauge,
    report: AggregationReport,
}

impl Exec<'_> {
    /// Delivers a completed parent block to node `ni`; recursively emits
    /// any of `ni`'s chunks the delivery completes.
    fn deliver(&mut self, nodes: &mut [Node], ni: usize, block: &Block) {
        let node_dims = nodes[ni].dims.clone();
        let expected = nodes[ni].expected;
        // Positions of this node's dims inside the block's dims.
        let pos: Vec<usize> = node_dims
            .iter()
            .map(|d| {
                block
                    .dims
                    .iter()
                    .position(|bd| bd == d)
                    .expect("child dims ⊆ parent dims")
            })
            .collect();
        let child_coord: Vec<u32> = pos.iter().map(|&p| block.chunk_coord[p]).collect();

        // Buffer shape: per-dim chunk extents, clipped at the axis end.
        let shape: Vec<u32> = node_dims
            .iter()
            .zip(&child_coord)
            .map(|(&d, &cc)| {
                let ext = self.geom.extents()[d];
                ext.min(self.geom.lens()[d].saturating_sub(cc * ext))
            })
            .collect();
        let buf_len: usize = shape.iter().map(|&s| s as usize).product::<usize>().max(1);

        let node = &mut nodes[ni];
        let buffer = node.buffers.entry(child_coord.clone()).or_insert_with(|| {
            self.live_chunks += 1;
            self.live_cells += buf_len as u64;
            self.gauge.add(buf_len as u64);
            self.report.peak_buffer_chunks = self.report.peak_buffer_chunks.max(self.live_chunks);
            self.report.peak_buffer_cells = self.report.peak_buffer_cells.max(self.live_cells);
            Buffer {
                accs: vec![Acc::new(); buf_len],
                shape,
                seen: 0,
            }
        });

        // Fold the block's cells in.
        for (cell, acc) in &block.cells {
            let mut off = 0usize;
            for (i, (&p, &d)) in pos.iter().zip(&node_dims).enumerate() {
                let ext = self.geom.extents()[d];
                let local = cell[p] - child_coord[i] * ext;
                off = off * buffer.shape[i] as usize + local as usize;
            }
            buffer.accs[off].merge(acc);
        }
        buffer.seen += 1;

        if buffer.seen < expected {
            return;
        }
        // Chunk complete: detach, record, cascade.
        let buffer = node.buffers.remove(&child_coord).expect("just inserted");
        self.live_chunks -= 1;
        self.live_cells -= buf_len as u64;
        self.gauge.sub(buf_len as u64);

        let mut cells: Vec<(Vec<u32>, Acc)> = Vec::new();
        for (off, acc) in buffer.accs.iter().enumerate() {
            if acc.is_empty() {
                continue;
            }
            // Decode the local offset into global coords over node dims.
            let mut rest = off;
            let mut local = vec![0u32; buffer.shape.len()];
            for i in (0..buffer.shape.len()).rev() {
                local[i] = (rest % buffer.shape[i] as usize) as u32;
                rest /= buffer.shape[i] as usize;
            }
            let global: Vec<u32> = node_dims
                .iter()
                .zip(&child_coord)
                .zip(&local)
                .map(|((&d, &cc), &l)| cc * self.geom.extents()[d] + l)
                .collect();
            cells.push((global, *acc));
        }
        if let Some(result) = &mut nodes[ni].result {
            for (coords, acc) in &cells {
                let idx = result.index(coords);
                result.accs[idx].merge(acc);
            }
        }
        let children = nodes[ni].children.clone();
        if children.is_empty() {
            return;
        }
        let block = Block {
            dims: node_dims,
            chunk_coord: child_coord,
            cells,
        };
        for c in children {
            self.deliver(nodes, c, &block);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olap_model::{DimensionSpec, SchemaBuilder};
    use std::sync::Arc;

    /// A 3D cube (4×6×3 cells, extent 2) with values = 100a + 10b + c.
    fn cube3d() -> Cube {
        let schema = Arc::new(
            SchemaBuilder::new()
                .dimension(DimensionSpec::new("A").leaves(&["a0", "a1", "a2", "a3"]))
                .dimension(DimensionSpec::new("B").leaves(&["b0", "b1", "b2", "b3", "b4", "b5"]))
                .dimension(DimensionSpec::new("C").leaves(&["c0", "c1", "c2"]))
                .build()
                .unwrap(),
        );
        let mut b = Cube::builder(schema, vec![2, 2, 2]).unwrap();
        for a in 0..4u32 {
            for bb in 0..6u32 {
                for c in 0..3u32 {
                    b.set_num(&[a, bb, c], (100 * a + 10 * bb + c) as f64)
                        .unwrap();
                }
            }
        }
        b.finish().unwrap()
    }

    /// Brute-force group-by for comparison.
    fn naive(cube: &Cube, mask: GroupByMask) -> HashMap<Vec<u32>, f64> {
        let lattice = Lattice::new(cube.geometry().ndims());
        let dims = lattice.dims_of(mask);
        let mut out: HashMap<Vec<u32>, f64> = HashMap::new();
        cube.for_each_present(|cell, v| {
            let key: Vec<u32> = dims.iter().map(|&d| cell[d]).collect();
            *out.entry(key).or_insert(0.0) += v;
        })
        .unwrap();
        out
    }

    #[test]
    fn all_group_bys_match_naive() {
        let cube = cube3d();
        let lattice = Lattice::new(3);
        let masks = lattice.proper_masks();
        let agg = CubeAggregator::with_order(&cube, vec![0, 1, 2]);
        let (results, report) = agg.compute(&masks).unwrap();
        assert_eq!(results.len(), masks.len());
        assert_eq!(report.base_chunks_scanned, 2 * 3 * 2);
        for &m in &masks {
            let r = &results[&m];
            let expect = naive(&cube, m);
            for (key, &total) in &expect {
                assert_eq!(
                    r.value(key, AggFn::Sum),
                    CellValue::Num(total),
                    "mask {m:b} at {key:?}"
                );
            }
        }
    }

    #[test]
    fn grand_totals_agree_across_masks() {
        let cube = cube3d();
        let total = cube.total_sum().unwrap();
        let lattice = Lattice::new(3);
        let agg = CubeAggregator::new(&cube);
        let (results, _) = agg.compute(&lattice.proper_masks()).unwrap();
        for (_, r) in results {
            assert!((r.grand_total() - total).abs() < 1e-9);
        }
    }

    #[test]
    fn avg_survives_cascade() {
        let cube = cube3d();
        let agg = CubeAggregator::new(&cube);
        // ∅ cascades through intermediate group-bys; AVG must still be the
        // true mean of all 72 leaf values.
        let (results, _) = agg.compute(&[0]).unwrap();
        let scalar = &results[&0];
        let mean = cube.total_sum().unwrap() / 72.0;
        let got = scalar.value(&[], AggFn::Avg).as_f64().unwrap();
        assert!((got - mean).abs() < 1e-9);
        assert_eq!(scalar.value(&[], AggFn::Count), CellValue::Num(72.0));
    }

    #[test]
    fn min_max_through_cascade() {
        let cube = cube3d();
        let agg = CubeAggregator::new(&cube);
        let (results, _) = agg.compute(&[0]).unwrap();
        let scalar = &results[&0];
        assert_eq!(scalar.value(&[], AggFn::Min), CellValue::Num(0.0));
        assert_eq!(scalar.value(&[], AggFn::Max), CellValue::Num(352.0));
    }

    #[test]
    fn sparse_cells_and_implicit_chunks() {
        let schema = Arc::new(
            SchemaBuilder::new()
                .dimension(DimensionSpec::new("X").leaves(&["x0", "x1", "x2", "x3"]))
                .dimension(DimensionSpec::new("Y").leaves(&["y0", "y1", "y2", "y3"]))
                .build()
                .unwrap(),
        );
        let mut b = Cube::builder(schema, vec![2, 2]).unwrap();
        b.set_num(&[0, 0], 5.0).unwrap();
        b.set_num(&[3, 3], 7.0).unwrap();
        let cube = b.finish().unwrap();
        let agg = CubeAggregator::new(&cube);
        let (results, _) = agg.compute(&[0b01, 0b10, 0]).unwrap();
        let x = &results[&0b01];
        assert_eq!(x.value(&[0], AggFn::Sum), CellValue::Num(5.0));
        assert_eq!(x.value(&[1], AggFn::Sum), CellValue::Null);
        assert_eq!(x.value(&[3], AggFn::Sum), CellValue::Num(7.0));
        let scalar = &results[&0];
        assert_eq!(scalar.value(&[], AggFn::Sum), CellValue::Num(12.0));
    }

    #[test]
    fn buffer_memory_tracks_zhao_rule() {
        // 16×16×16 cube, extent 4 — Fig. 6. Under order ABC, group-by AB
        // alone needs 16 chunk buffers at peak.
        let mut names: Vec<String> = Vec::new();
        for i in 0..16 {
            names.push(format!("m{i}"));
        }
        let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let schema = Arc::new(
            SchemaBuilder::new()
                .dimension(DimensionSpec::new("A").leaves(&name_refs))
                .dimension(DimensionSpec::new("B").leaves(&name_refs))
                .dimension(DimensionSpec::new("C").leaves(&name_refs))
                .build()
                .unwrap(),
        );
        let mut b = Cube::builder(schema, vec![4, 4, 4]).unwrap();
        // A light sprinkle of data so chunks materialize.
        for i in 0..16u32 {
            b.set_num(&[i, (i * 3) % 16, (i * 5) % 16], 1.0).unwrap();
        }
        let cube = b.finish().unwrap();
        let ab = 0b011;
        let agg = CubeAggregator::with_order(&cube, vec![0, 1, 2]);
        let (_, report) = agg.compute(&[ab]).unwrap();
        // AB buffers: all 16 AB-chunks live until the C dimension finishes.
        assert_eq!(report.peak_buffer_chunks, 16);
        // Under order CBA, AB completes immediately: 1 buffer at a time.
        let agg2 = CubeAggregator::with_order(&cube, vec![2, 1, 0]);
        let (_, report2) = agg2.compute(&[ab]).unwrap();
        assert_eq!(report2.peak_buffer_chunks, 1);
    }

    #[test]
    fn budgeted_multipass_matches_single_pass() {
        let cube = cube3d();
        let lattice = Lattice::new(3);
        let masks = lattice.proper_masks();
        let agg = CubeAggregator::with_order(&cube, vec![0, 1, 2]);
        let (single, single_report) = agg.compute(&masks).unwrap();
        assert_eq!(single_report.passes, 1);
        // A budget just above the biggest single node forces several
        // passes but identical results.
        let mmst = Mmst::build(cube.geometry(), &[0, 1, 2]);
        let biggest = masks.iter().map(|&m| mmst.memory_cells(m)).max().unwrap();
        let (multi, multi_report) = agg.compute_with_budget(&masks, biggest + 4).unwrap();
        assert!(multi_report.passes > 1, "expected multiple passes");
        assert!(
            multi_report.base_chunks_scanned > single_report.base_chunks_scanned,
            "multi-pass re-scans the base"
        );
        assert_eq!(single.len(), multi.len());
        for (&m, r) in &single {
            let r2 = &multi[&m];
            for (i, acc) in r.accs.iter().enumerate() {
                assert_eq!(acc, &r2.accs[i], "mask {m:b} cell {i}");
            }
        }
        // An impossible budget errors.
        assert!(agg.compute_with_budget(&masks, biggest - 1).is_err());
        // A lavish budget runs in one pass.
        let (_, r) = agg
            .compute_with_budget(&masks, mmst.total_memory_cells())
            .unwrap();
        assert_eq!(r.passes, 1);
    }

    #[test]
    fn parallel_matches_serial_accumulators() {
        let cube = cube3d();
        let lattice = Lattice::new(3);
        // Include the full mask so the main-thread path is covered too.
        let mut masks = lattice.proper_masks();
        masks.push(lattice.full());
        let serial = CubeAggregator::with_order(&cube, vec![0, 1, 2]);
        let (s_res, s_rep) = serial.compute(&masks).unwrap();
        assert!(s_rep.per_thread_peak_cells.is_empty(), "serial mode");
        for threads in [2, 3, 8] {
            let par = CubeAggregator::with_order(&cube, vec![0, 1, 2]).with_threads(threads);
            let (p_res, p_rep) = par.compute(&masks).unwrap();
            assert_eq!(s_res.len(), p_res.len());
            for (&m, r) in &s_res {
                let r2 = &p_res[&m];
                for (i, acc) in r.accs.iter().enumerate() {
                    assert_eq!(acc, &r2.accs[i], "threads {threads} mask {m:b} cell {i}");
                }
            }
            assert!(!p_rep.per_thread_peak_cells.is_empty());
            assert_eq!(
                p_rep.per_thread_peak_cells.iter().sum::<u64>(),
                p_rep.peak_buffer_cells,
                "aggregate peak is the sum of per-worker peaks"
            );
            assert!(p_rep.max_worker_peak_cells() <= p_rep.peak_buffer_cells);
        }
    }

    #[test]
    fn concurrent_peak_is_true_high_water() {
        let cube = cube3d();
        let masks = Lattice::new(3).proper_masks();
        let (_, serial) = CubeAggregator::with_order(&cube, vec![0, 1, 2])
            .compute(&masks)
            .unwrap();
        // One worker: the gauge and the serial counter see the same
        // inserts/removes, so the marks coincide exactly.
        assert_eq!(serial.concurrent_peak_cells, serial.peak_buffer_cells);
        for threads in [2, 3, 8] {
            let (_, par) = CubeAggregator::with_order(&cube, vec![0, 1, 2])
                .with_threads(threads)
                .compute(&masks)
                .unwrap();
            assert!(par.concurrent_peak_cells > 0);
            // The true mark is bracketed by the busiest single worker
            // (that worker's cells were all live at its own peak) and
            // the summed per-worker peaks (the all-peak-together bound).
            assert!(par.concurrent_peak_cells >= par.max_worker_peak_cells());
            assert!(par.concurrent_peak_cells <= par.peak_buffer_cells);
        }
    }

    #[test]
    fn concurrent_peak_survives_multipass_max() {
        let cube = cube3d();
        let masks = Lattice::new(3).proper_masks();
        let agg = CubeAggregator::with_order(&cube, vec![0, 1, 2]);
        let mmst = Mmst::build(cube.geometry(), &[0, 1, 2]);
        let biggest = masks.iter().map(|&m| mmst.memory_cells(m)).max().unwrap();
        let (_, multi) = agg.compute_with_budget(&masks, biggest + 4).unwrap();
        assert!(multi.passes > 1);
        assert_eq!(multi.concurrent_peak_cells, multi.peak_buffer_cells);
        assert!(multi.concurrent_peak_cells <= biggest + 4);
    }

    #[test]
    fn threads_one_is_bit_identical_to_default() {
        let cube = cube3d();
        let masks = Lattice::new(3).proper_masks();
        let (_, base) = CubeAggregator::with_order(&cube, vec![0, 1, 2])
            .compute(&masks)
            .unwrap();
        let (_, one) = CubeAggregator::with_order(&cube, vec![0, 1, 2])
            .with_threads(1)
            .compute(&masks)
            .unwrap();
        assert_eq!(base, one);
    }

    #[test]
    fn full_mask_returns_base() {
        let cube = cube3d();
        let agg = CubeAggregator::new(&cube);
        let full = Lattice::new(3).full();
        let (results, _) = agg.compute(&[full]).unwrap();
        let r = &results[&full];
        assert_eq!(r.value(&[1, 2, 1], AggFn::Sum), CellValue::Num(121.0));
    }
}
