//! Bottom-Up Cube computation with iceberg pruning — Beyer &
//! Ramakrishnan, *Bottom-Up Computation of Sparse and Iceberg CUBEs*
//! (SIGMOD'99), the paper's citation \[2\] for "substantial work in
//! efficient evaluation of OLAP queries".
//!
//! Where the Zhao-style [`crate::CubeAggregator`] computes *all* requested
//! group-bys in one array pass, BUC recurses over dimensions partition by
//! partition and prunes any partition whose support falls below the
//! iceberg threshold — the standard choice for sparse cubes and
//! `HAVING COUNT(*) >= N` style queries. Both engines agree exactly on
//! the cells they both emit (tested), so either can back the what-if
//! evaluation.

use crate::cube::Cube;
use crate::lattice::GroupByMask;
use crate::rules::{Acc, AggFn};
use crate::Result;
use olap_store::CellValue;
use std::collections::HashMap;

/// One iceberg cell: a group-by mask plus coordinates over its retained
/// dimensions (ascending dimension order).
pub type IcebergKey = (GroupByMask, Vec<u32>);

/// The result of a BUC run: every group-by cell (across *all* masks at or
/// above the iceberg threshold), keyed by mask + coordinates.
#[derive(Debug, Clone)]
pub struct IcebergCube {
    cells: HashMap<IcebergKey, Acc>,
    /// Minimum support (non-⊥ base cells) a cell needs to be emitted.
    pub min_support: u64,
}

impl IcebergCube {
    /// The accumulator for one cell, if it met the threshold.
    pub fn acc(&self, mask: GroupByMask, coords: &[u32]) -> Option<&Acc> {
        self.cells.get(&(mask, coords.to_vec()))
    }

    /// The finalized value for one cell.
    pub fn value(&self, mask: GroupByMask, coords: &[u32], agg: AggFn) -> CellValue {
        self.acc(mask, coords)
            .map(|a| a.finalize(agg))
            .unwrap_or(CellValue::Null)
    }

    /// Number of emitted cells across all group-bys.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` when nothing met the threshold.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Cells of one mask, as (coords, acc) pairs.
    pub fn cells_of(&self, mask: GroupByMask) -> Vec<(&[u32], &Acc)> {
        let mut out: Vec<(&[u32], &Acc)> = self
            .cells
            .iter()
            .filter(|((m, _), _)| *m == mask)
            .map(|((_, c), a)| (c.as_slice(), a))
            .collect();
        out.sort_by(|a, b| a.0.cmp(b.0));
        out
    }
}

/// Runs BUC over the cube's non-⊥ leaf cells.
///
/// `min_support` is the iceberg condition (`COUNT(*) >= min_support`);
/// 1 computes the full sparse cube. The apex (∅ mask) is always
/// evaluated; descendants of a pruned partition are never visited — the
/// anti-monotonicity of COUNT that makes BUC fast on sparse data.
pub fn buc(cube: &Cube, min_support: u64) -> Result<IcebergCube> {
    let ndims = cube.geometry().ndims();
    assert!(ndims <= 31, "mask width");
    // Materialize the fact list once (BUC is tuple-oriented).
    let mut tuples: Vec<(Vec<u32>, f64)> = Vec::new();
    cube.for_each_present(|cell, v| tuples.push((cell.to_vec(), v)))?;
    let mut out = IcebergCube {
        cells: HashMap::new(),
        min_support: min_support.max(1),
    };
    let n = tuples.len();
    let mut order: Vec<usize> = (0..n).collect();
    let mut coords = vec![0u32; 0];
    recurse(
        &mut tuples,
        &mut order,
        0,
        ndims,
        0,
        &mut coords,
        out.min_support,
        &mut out.cells,
    );
    Ok(out)
}

/// BUC recursion: aggregate the current partition (writing the cell for
/// the current mask/coords), then for each remaining dimension, partition
/// by its values and recurse into partitions meeting the threshold.
#[allow(clippy::too_many_arguments)]
fn recurse(
    tuples: &mut [(Vec<u32>, f64)],
    order: &mut [usize],
    first_dim: usize,
    ndims: usize,
    mask: GroupByMask,
    coords: &mut Vec<u32>,
    min_support: u64,
    out: &mut HashMap<IcebergKey, Acc>,
) {
    let mut acc = Acc::new();
    for &i in order.iter() {
        acc.add(tuples[i].1);
    }
    out.insert((mask, coords.clone()), acc);
    for d in first_dim..ndims {
        // Partition the current tuple set by dimension d's coordinate.
        let mut groups: HashMap<u32, Vec<usize>> = HashMap::new();
        for &i in order.iter() {
            groups.entry(tuples[i].0[d]).or_default().push(i);
        }
        let mut keys: Vec<u32> = groups.keys().copied().collect();
        keys.sort_unstable();
        for k in keys {
            let mut part = groups.remove(&k).expect("key from map");
            if (part.len() as u64) < min_support {
                continue; // prune: no descendant can recover support
            }
            coords.push(k);
            recurse(
                tuples,
                &mut part,
                d + 1,
                ndims,
                mask | (1 << d),
                coords,
                min_support,
                out,
            );
            coords.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::CubeAggregator;
    use crate::lattice::Lattice;
    use olap_model::{DimensionSpec, SchemaBuilder};
    use std::sync::Arc;

    fn cube3d(sparse: bool) -> Cube {
        let schema = Arc::new(
            SchemaBuilder::new()
                .dimension(DimensionSpec::new("A").leaves(&["a0", "a1", "a2", "a3"]))
                .dimension(DimensionSpec::new("B").leaves(&["b0", "b1", "b2"]))
                .dimension(DimensionSpec::new("C").leaves(&["c0", "c1"]))
                .build()
                .unwrap(),
        );
        let mut b = Cube::builder(schema, vec![2, 2, 2]).unwrap();
        for a in 0..4u32 {
            for bb in 0..3u32 {
                for c in 0..2u32 {
                    if sparse && (a + bb + c) % 3 == 0 {
                        continue;
                    }
                    b.set_num(&[a, bb, c], (a * 100 + bb * 10 + c) as f64)
                        .unwrap();
                }
            }
        }
        b.finish().unwrap()
    }

    #[test]
    fn full_sparse_cube_matches_cascade_engine() {
        let cube = cube3d(true);
        let iceberg = buc(&cube, 1).unwrap();
        let lattice = Lattice::new(3);
        let agg = CubeAggregator::new(&cube);
        let (results, _) = agg.compute(&lattice.proper_masks()).unwrap();
        for m in lattice.proper_masks() {
            let r = &results[&m];
            for (coords, acc) in iceberg.cells_of(m) {
                assert_eq!(
                    acc.finalize(AggFn::Sum),
                    r.value(coords, AggFn::Sum),
                    "mask {m:b} at {coords:?}"
                );
                assert_eq!(acc.count, r.acc(coords).count);
            }
            // And BUC emitted every non-empty cell the cascade found.
            let emitted = iceberg.cells_of(m).len();
            let mut nonempty = 0;
            let shape: Vec<u32> = r.shape().to_vec();
            let mut idx = vec![0u32; shape.len()];
            loop {
                if !r.acc(&idx).is_empty() {
                    nonempty += 1;
                }
                let mut d = shape.len();
                let mut done = shape.is_empty();
                while d > 0 {
                    d -= 1;
                    idx[d] += 1;
                    if idx[d] < shape[d] {
                        break;
                    }
                    idx[d] = 0;
                    if d == 0 {
                        done = true;
                    }
                }
                if done {
                    break;
                }
            }
            assert_eq!(emitted, nonempty, "mask {m:b}");
        }
        // The apex too.
        assert_eq!(
            iceberg.value(0, &[], AggFn::Sum),
            CellValue::num(cube.total_sum().unwrap())
        );
    }

    #[test]
    fn iceberg_threshold_prunes_anti_monotonically() {
        let cube = cube3d(false); // dense: every (a,b) has 2 support
        let iceberg = buc(&cube, 3).unwrap();
        // AB cells have support 2 < 3: all pruned.
        assert!(iceberg.cells_of(0b011).is_empty());
        // A cells have support 6 ≥ 3: all present.
        assert_eq!(iceberg.cells_of(0b001).len(), 4);
        // Anti-monotonicity: any emitted cell's ancestors are emitted.
        for ((mask, coords), _) in iceberg.cells.iter() {
            for (pos, d) in Lattice::new(3).dims_of(*mask).into_iter().enumerate() {
                let parent_mask = mask & !(1 << d);
                let mut parent_coords = coords.clone();
                parent_coords.remove(pos);
                assert!(
                    iceberg.acc(parent_mask, &parent_coords).is_some(),
                    "cell ({mask:b}, {coords:?}) lacks ancestor ({parent_mask:b})"
                );
            }
        }
    }

    #[test]
    fn support_counts_are_exact() {
        let cube = cube3d(false);
        let iceberg = buc(&cube, 1).unwrap();
        // Every A-cell groups 3×2 = 6 base cells.
        for (_, acc) in iceberg.cells_of(0b001) {
            assert_eq!(acc.count, 6);
        }
        assert_eq!(iceberg.acc(0, &[]).unwrap().count, 24);
    }

    #[test]
    fn min_support_one_on_empty_cube() {
        let schema = Arc::new(
            SchemaBuilder::new()
                .dimension(DimensionSpec::new("X").leaves(&["x0", "x1"]))
                .build()
                .unwrap(),
        );
        let cube = Cube::builder(schema, vec![2]).unwrap().finish().unwrap();
        let iceberg = buc(&cube, 1).unwrap();
        // Only the apex (with an empty accumulator) is present.
        assert_eq!(iceberg.len(), 1);
        assert_eq!(iceberg.value(0, &[], AggFn::Sum), CellValue::Null);
    }

    #[test]
    fn higher_threshold_emits_subset() {
        let cube = cube3d(true);
        let low = buc(&cube, 1).unwrap();
        let high = buc(&cube, 4).unwrap();
        assert!(high.len() < low.len());
        for (key, acc) in high.cells.iter() {
            let base = low.cells.get(key).expect("subset");
            assert_eq!(acc, base);
            assert!(acc.count >= 4);
        }
    }
}
