//! Cube-layer errors.

use std::fmt;

/// Errors from cube construction, querying, and aggregation.
#[derive(Debug)]
pub enum CubeError {
    /// Underlying model error.
    Model(olap_model::ModelError),
    /// Underlying storage error.
    Store(olap_store::StoreError),
    /// A cell reference didn't match the cube's dimensionality.
    BadCellRef { expected: usize, got: usize },
    /// A selector referenced a slot outside an axis.
    SlotOutOfRange { dim: usize, slot: u32, len: u32 },
    /// Formula evaluation exceeded the recursion limit (rule cycle).
    RuleCycle { measure: String },
    /// A formula divided by zero (and the rule set forbids it).
    DivisionByZero { measure: String },
    /// The aggregation plan exceeded the memory budget in a single pass.
    BudgetTooSmall { needed: u64, budget: u64 },
}

impl fmt::Display for CubeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CubeError::Model(e) => write!(f, "model error: {e}"),
            CubeError::Store(e) => write!(f, "store error: {e}"),
            CubeError::BadCellRef { expected, got } => {
                write!(
                    f,
                    "cell ref has {got} selectors, cube has {expected} dimensions"
                )
            }
            CubeError::SlotOutOfRange { dim, slot, len } => {
                write!(f, "slot {slot} out of range (axis {dim} has {len} slots)")
            }
            CubeError::RuleCycle { measure } => {
                write!(
                    f,
                    "rule cycle detected while evaluating measure {measure:?}"
                )
            }
            CubeError::DivisionByZero { measure } => {
                write!(f, "division by zero evaluating measure {measure:?}")
            }
            CubeError::BudgetTooSmall { needed, budget } => write!(
                f,
                "aggregation needs {needed} chunk-buffer cells but budget is {budget}"
            ),
        }
    }
}

impl std::error::Error for CubeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CubeError::Model(e) => Some(e),
            CubeError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<olap_model::ModelError> for CubeError {
    fn from(e: olap_model::ModelError) -> Self {
        CubeError::Model(e)
    }
}

impl From<olap_store::StoreError> for CubeError {
    fn from(e: olap_store::StoreError) -> Self {
        CubeError::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_context() {
        let e = CubeError::BadCellRef {
            expected: 3,
            got: 2,
        };
        assert!(e.to_string().contains('3'));
        let e = CubeError::RuleCycle {
            measure: "Margin".into(),
        };
        assert!(e.to_string().contains("Margin"));
    }
}
