//! The group-by lattice and minimum-memory spanning tree (MMST) of
//! Zhao, Deshpande, Naughton (SIGMOD'97), reviewed in the paper's
//! Section 5 as the core cube algorithm its perspective evaluation extends.
//!
//! A group-by is the sub-cube retaining a subset of dimensions and
//! aggregating the rest away, encoded as a [`GroupByMask`] (bit *i* set ⇔
//! dimension *i* retained). Reading base chunks in a *dimension order*
//! (first dimension varying fastest), each group-by needs a predictable
//! number of chunk buffers held in memory until they complete —
//! [`memory_chunks`] implements Zhao et al.'s rule, reproducing the
//! worked example of the paper's Fig. 6 (BC needs 1 chunk, AC needs 4,
//! AB needs 16).
//!
//! The [`Mmst`] picks, for every group-by, the cheapest parent to cascade
//! from, and can split the lattice into multiple passes when the buffer
//! budget is too small for one.

use crate::error::CubeError;
use crate::Result;
use olap_store::ChunkGeometry;
use std::collections::HashMap;

/// Bitmask of retained dimensions.
pub type GroupByMask = u32;

/// The dimension-subset lattice for an `n`-dimensional cube.
#[derive(Debug, Clone, Copy)]
pub struct Lattice {
    n: usize,
}

impl Lattice {
    /// Lattice over `n` dimensions (n ≤ 31).
    pub fn new(n: usize) -> Self {
        assert!(n <= 31, "lattice supports up to 31 dimensions");
        Lattice { n }
    }

    /// Number of dimensions.
    pub fn ndims(&self) -> usize {
        self.n
    }

    /// The mask retaining every dimension (the base cube).
    pub fn full(&self) -> GroupByMask {
        ((1u64 << self.n) - 1) as GroupByMask
    }

    /// Every mask, ∅ through full.
    pub fn all_masks(&self) -> Vec<GroupByMask> {
        (0..(1u64 << self.n) as GroupByMask).collect()
    }

    /// Every proper group-by (excludes the base cube).
    pub fn proper_masks(&self) -> Vec<GroupByMask> {
        self.all_masks()
            .into_iter()
            .filter(|&m| m != self.full())
            .collect()
    }

    /// Direct parents: masks with exactly one more retained dimension.
    pub fn parents(&self, g: GroupByMask) -> Vec<GroupByMask> {
        (0..self.n)
            .filter(|&d| g & (1 << d) == 0)
            .map(|d| g | (1 << d))
            .collect()
    }

    /// Direct children: masks with exactly one fewer retained dimension.
    pub fn children(&self, g: GroupByMask) -> Vec<GroupByMask> {
        (0..self.n)
            .filter(|&d| g & (1 << d) != 0)
            .map(|d| g & !(1 << d))
            .collect()
    }

    /// The retained dimensions of a mask, ascending.
    pub fn dims_of(&self, g: GroupByMask) -> Vec<usize> {
        (0..self.n).filter(|&d| g & (1 << d) != 0).collect()
    }

    /// Renders a mask as dimension letters (`"AC"` for dims {0, 2}).
    pub fn mask_name(&self, g: GroupByMask) -> String {
        if g == 0 {
            return "∅".to_string();
        }
        self.dims_of(g)
            .into_iter()
            .map(|d| (b'A' + d as u8) as char)
            .collect()
    }
}

/// Zhao et al.'s memory rule, in chunks: reading base chunks with
/// `order[0]` varying fastest, group-by `g` must buffer
/// `Π_{i retained, pos(i) < p} grid[i]` chunks, where `p` is the highest
/// read-order position among *aggregated* dimensions.
///
/// The base cube itself needs exactly one chunk (the one being read).
pub fn memory_chunks(geom: &ChunkGeometry, order: &[usize], g: GroupByMask) -> u64 {
    let lattice = Lattice::new(geom.ndims());
    if g == lattice.full() {
        return 1;
    }
    let pos: HashMap<usize, usize> = order.iter().enumerate().map(|(p, &d)| (d, p)).collect();
    // Aggregated dimensions with a single chunk never delay completion —
    // only multi-chunk aggregated dims force buffering (a refinement of
    // Zhao's rule that makes it exact on degenerate grids).
    let p = (0..geom.ndims())
        .filter(|&d| g & (1 << d) == 0 && geom.grid()[d] > 1)
        .map(|d| pos[&d])
        .max();
    let Some(p) = p else {
        return 1; // every group-by chunk completes as soon as it is touched
    };
    lattice
        .dims_of(g)
        .into_iter()
        .map(|d| {
            if pos[&d] < p {
                geom.grid()[d] as u64
            } else {
                1
            }
        })
        .product()
}

/// Memory rule in cells: chunks × cells per group-by chunk.
pub fn memory_cells(geom: &ChunkGeometry, order: &[usize], g: GroupByMask) -> u64 {
    let lattice = Lattice::new(geom.ndims());
    let per_chunk: u64 = lattice
        .dims_of(g)
        .into_iter()
        .map(|d| geom.extents()[d] as u64)
        .product();
    memory_chunks(geom, order, g) * per_chunk.max(1)
}

/// The dimension order minimizing total buffer memory: ascending
/// cardinality, per Zhao et al. ("choosing a dimension order in the
/// increasing order of their cardinality").
pub fn min_memory_order(geom: &ChunkGeometry) -> Vec<usize> {
    let mut order: Vec<usize> = (0..geom.ndims()).collect();
    order.sort_by_key(|&d| geom.lens()[d]);
    order
}

/// A minimum-memory spanning tree over the group-by lattice.
#[derive(Debug, Clone)]
pub struct Mmst {
    lattice: Lattice,
    order: Vec<usize>,
    /// `parent[g]` for every proper mask; the full mask is the root.
    parent: HashMap<GroupByMask, GroupByMask>,
    /// Buffer memory (cells) per mask under the chosen order.
    mem_cells: HashMap<GroupByMask, u64>,
}

impl Mmst {
    /// Builds the MMST for all proper group-bys under a read order.
    ///
    /// Each node picks the parent whose *result* is smallest (fewest
    /// cells) — the standard minimum-size-parent heuristic, which
    /// minimizes the work of cascading.
    pub fn build(geom: &ChunkGeometry, order: &[usize]) -> Self {
        let lattice = Lattice::new(geom.ndims());
        let full = lattice.full();
        let result_cells = |g: GroupByMask| -> u64 {
            lattice
                .dims_of(g)
                .into_iter()
                .map(|d| geom.lens()[d] as u64)
                .product::<u64>()
                .max(1)
        };
        let mut parent = HashMap::new();
        let mut mem_cells = HashMap::new();
        for g in lattice.all_masks() {
            mem_cells.insert(g, memory_cells(geom, order, g));
            if g == full {
                continue;
            }
            let best = lattice
                .parents(g)
                .into_iter()
                .min_by_key(|&p| (result_cells(p), p))
                .expect("proper mask has a parent");
            parent.insert(g, best);
        }
        Mmst {
            lattice,
            order: order.to_vec(),
            parent,
            mem_cells,
        }
    }

    /// The lattice.
    pub fn lattice(&self) -> Lattice {
        self.lattice
    }

    /// The read order the tree was built for.
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// The tree parent of a proper mask.
    pub fn parent(&self, g: GroupByMask) -> Option<GroupByMask> {
        self.parent.get(&g).copied()
    }

    /// Tree children of a mask.
    pub fn tree_children(&self, g: GroupByMask) -> Vec<GroupByMask> {
        let mut c: Vec<GroupByMask> = self
            .parent
            .iter()
            .filter(|(_, &p)| p == g)
            .map(|(&m, _)| m)
            .collect();
        c.sort_unstable();
        c
    }

    /// Buffer memory in cells for one mask.
    pub fn memory_cells(&self, g: GroupByMask) -> u64 {
        self.mem_cells[&g]
    }

    /// Total buffer memory (cells) if every group-by runs in one pass.
    pub fn total_memory_cells(&self) -> u64 {
        self.lattice
            .proper_masks()
            .into_iter()
            .map(|g| self.mem_cells[&g])
            .sum()
    }

    /// Splits the requested masks into passes whose combined buffer
    /// memory fits `budget_cells`. A node is always scheduled at or after
    /// its tree ancestors (ancestors materialize results earlier passes
    /// can cascade from). Errors if a single mask alone exceeds the
    /// budget.
    pub fn plan_passes(
        &self,
        masks: &[GroupByMask],
        budget_cells: u64,
    ) -> Result<Vec<Vec<GroupByMask>>> {
        // Order: by depth from the root so parents come first, then by
        // descending memory so big buffers pack early.
        let depth = |g: GroupByMask| -> u32 { (self.lattice.n as u32) - g.count_ones() };
        let mut work: Vec<GroupByMask> = masks.to_vec();
        work.sort_by_key(|&g| (depth(g), std::cmp::Reverse(self.mem_cells[&g])));
        let mut passes: Vec<Vec<GroupByMask>> = Vec::new();
        let mut pass: Vec<GroupByMask> = Vec::new();
        let mut used = 0u64;
        for g in work {
            let need = self.mem_cells[&g];
            if need > budget_cells {
                return Err(CubeError::BudgetTooSmall {
                    needed: need,
                    budget: budget_cells,
                });
            }
            if used + need > budget_cells && !pass.is_empty() {
                passes.push(std::mem::take(&mut pass));
                used = 0;
            }
            used += need;
            pass.push(g);
        }
        if !pass.is_empty() {
            passes.push(pass);
        }
        Ok(passes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig. 6's cube: 3 dimensions, 4 chunks each.
    fn fig6() -> ChunkGeometry {
        ChunkGeometry::uniform(vec![16, 16, 16], 4).unwrap()
    }

    #[test]
    fn lattice_navigation() {
        let l = Lattice::new(3);
        assert_eq!(l.full(), 0b111);
        assert_eq!(l.parents(0b001), vec![0b011, 0b101]);
        assert_eq!(l.children(0b011), vec![0b010, 0b001]);
        assert_eq!(l.dims_of(0b101), vec![0, 2]);
        assert_eq!(l.mask_name(0b101), "AC");
        assert_eq!(l.mask_name(0), "∅");
        assert_eq!(l.proper_masks().len(), 7);
    }

    #[test]
    fn zhao_memory_rule_matches_paper_example() {
        // Paper, Section 5: order ABC; "for any BC group-by, we just need
        // enough memory to hold one chunk … 4 chunks for any AC group-by
        // … 16 chunks for any AB group-by."
        let g = fig6();
        let order = [0, 1, 2]; // A fastest
        let bc = 0b110;
        let ac = 0b101;
        let ab = 0b011;
        assert_eq!(memory_chunks(&g, &order, bc), 1);
        assert_eq!(memory_chunks(&g, &order, ac), 4);
        assert_eq!(memory_chunks(&g, &order, ab), 16);
        // Base cube: the single chunk being read.
        assert_eq!(memory_chunks(&g, &order, 0b111), 1);
        // Cells variant scales by the group-by chunk size (4×4 = 16).
        assert_eq!(memory_cells(&g, &order, ab), 16 * 16);
    }

    #[test]
    fn memory_depends_on_order() {
        let g = fig6();
        // Under order CBA (C fastest), AB needs 1 chunk, BC needs 16.
        let order = [2, 1, 0];
        assert_eq!(memory_chunks(&g, &order, 0b011), 1);
        assert_eq!(memory_chunks(&g, &order, 0b110), 16);
    }

    #[test]
    fn min_memory_order_is_ascending_cardinality() {
        let g = ChunkGeometry::uniform(vec![100, 4, 40], 4).unwrap();
        assert_eq!(min_memory_order(&g), vec![1, 2, 0]);
    }

    #[test]
    fn mmst_parents_are_supersets() {
        let g = fig6();
        let t = Mmst::build(&g, &[0, 1, 2]);
        for m in t.lattice().proper_masks() {
            let p = t.parent(m).unwrap();
            assert_eq!(p & m, m, "parent {p:b} must contain {m:b}");
            assert_eq!(p.count_ones(), m.count_ones() + 1);
        }
        assert_eq!(t.parent(0b111), None);
    }

    #[test]
    fn mmst_prefers_small_parents() {
        // Axis lens 2, 100, 100: group-by ∅ should cascade from A (len 2),
        // not from B or C.
        let g = ChunkGeometry::uniform(vec![2, 100, 100], 2).unwrap();
        let t = Mmst::build(&g, &[0, 1, 2]);
        assert_eq!(t.parent(0), Some(0b001));
    }

    #[test]
    fn tree_children_inverse_of_parent() {
        let g = fig6();
        let t = Mmst::build(&g, &[0, 1, 2]);
        for m in t.lattice().proper_masks() {
            let p = t.parent(m).unwrap();
            assert!(t.tree_children(p).contains(&m));
        }
    }

    #[test]
    fn plan_passes_respects_budget() {
        let g = fig6();
        let t = Mmst::build(&g, &[0, 1, 2]);
        let masks = t.lattice().proper_masks();
        let total = t.total_memory_cells();
        // Everything fits in one pass with the full budget.
        let one = t.plan_passes(&masks, total).unwrap();
        assert_eq!(one.len(), 1);
        // A budget that fits the biggest node but not everything forces
        // multiple passes.
        let biggest_node = masks.iter().map(|&m| t.memory_cells(m)).max().unwrap();
        assert!(biggest_node < total);
        let multi = t.plan_passes(&masks, biggest_node + 50).unwrap();
        assert!(multi.len() >= 2);
        let flat: Vec<_> = multi.concat();
        assert_eq!(flat.len(), masks.len());
        // A budget smaller than the biggest single node errors.
        let biggest = masks.iter().map(|&m| t.memory_cells(m)).max().unwrap();
        assert!(t.plan_passes(&masks, biggest - 1).is_err());
    }
}
