//! Calculation rules (paper Section 2).
//!
//! "Rules specify how the value of a cell is computed in terms of other
//! cell values." Two kinds are supported, mirroring the paper's examples:
//!
//! * **aggregation rules** — a default aggregate (sum, by convention) plus
//!   per-measure overrides, applied when a non-leaf cell's value is the
//!   rollup of its descendant leaf cells;
//! * **formula rules** — expressions over sibling measures, optionally
//!   *scoped* to a region of the cube:
//!   `"Margin = Sales - COGS"`, `"For Market = East, Margin = 0.93 * Sales
//!   - COGS"`, `"Margin% = Margin / COGS * 100"`.
//!
//! When several formulas target the same measure, the most specific scope
//! (most scope entries) wins; insertion order breaks ties in favour of the
//! later rule.

use olap_model::{DimensionId, MemberId};
use olap_store::CellValue;
use std::collections::HashMap;

/// Standard aggregation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AggFn {
    /// Sum of non-⊥ cells (the OLAP default).
    #[default]
    Sum,
    /// Count of non-⊥ cells.
    Count,
    /// Minimum of non-⊥ cells.
    Min,
    /// Maximum of non-⊥ cells.
    Max,
    /// Mean of non-⊥ cells.
    Avg,
}

/// A distributive accumulator that can finalize into any [`AggFn`].
///
/// Carrying sum/count/min/max together keeps cascaded aggregation
/// (Zhao-style, where group-bys are computed from other group-bys) correct
/// for the algebraic `Avg`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Acc {
    /// Sum of accumulated values.
    pub sum: f64,
    /// Number of accumulated values.
    pub count: u64,
    /// Minimum accumulated value.
    pub min: f64,
    /// Maximum accumulated value.
    pub max: f64,
}

impl Default for Acc {
    fn default() -> Self {
        Acc {
            sum: 0.0,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Acc {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether anything has been accumulated.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Adds one value.
    #[inline]
    pub fn add(&mut self, v: f64) {
        self.sum += v;
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Adds a cell, skipping ⊥.
    #[inline]
    pub fn add_cell(&mut self, v: CellValue) {
        if let CellValue::Num(x) = v {
            self.add(x);
        }
    }

    /// Merges another accumulator (associative, commutative).
    pub fn merge(&mut self, other: &Acc) {
        self.sum += other.sum;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Finalizes into a value for `agg`. Empty accumulators finalize to ⊥
    /// — a non-leaf cell whose whole scope is meaningless is meaningless.
    pub fn finalize(&self, agg: AggFn) -> CellValue {
        if self.is_empty() {
            return CellValue::Null;
        }
        let v = match agg {
            AggFn::Sum => self.sum,
            AggFn::Count => self.count as f64,
            AggFn::Min => self.min,
            AggFn::Max => self.max,
            AggFn::Avg => self.sum / self.count as f64,
        };
        CellValue::num(v)
    }
}

/// An arithmetic expression over measures of the same cell.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal.
    Const(f64),
    /// The value of another measure member at the same non-measure
    /// coordinates.
    Measure(MemberId),
    /// Addition.
    Add(Box<Expr>, Box<Expr>),
    /// Subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Multiplication.
    Mul(Box<Expr>, Box<Expr>),
    /// Division. Division by zero (or by ⊥) yields ⊥.
    Div(Box<Expr>, Box<Expr>),
    /// Negation.
    Neg(Box<Expr>),
}

#[allow(clippy::should_implement_trait)] // builder methods, deliberately by-value
impl Expr {
    /// `Expr::Measure` shorthand.
    pub fn measure(m: MemberId) -> Expr {
        Expr::Measure(m)
    }

    /// `Expr::Const` shorthand.
    pub fn constant(c: f64) -> Expr {
        Expr::Const(c)
    }

    /// `self + rhs`.
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(rhs))
    }

    /// `self - rhs`.
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Sub(Box::new(self), Box::new(rhs))
    }

    /// `self * rhs`.
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(rhs))
    }

    /// `self / rhs`.
    pub fn div(self, rhs: Expr) -> Expr {
        Expr::Div(Box::new(self), Box::new(rhs))
    }

    /// Measures referenced by the expression (for dependency checks).
    pub fn references(&self) -> Vec<MemberId> {
        let mut out = Vec::new();
        self.collect_refs(&mut out);
        out
    }

    fn collect_refs(&self, out: &mut Vec<MemberId>) {
        match self {
            Expr::Const(_) => {}
            Expr::Measure(m) => out.push(*m),
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                a.collect_refs(out);
                b.collect_refs(out);
            }
            Expr::Neg(a) => a.collect_refs(out),
        }
    }
}

/// A formula rule: `target = expr`, restricted to the given scope.
#[derive(Debug, Clone, PartialEq)]
pub struct FormulaRule {
    /// The measure member the rule defines.
    pub target: MemberId,
    /// Restrictions on non-measure dimensions: the cell's coordinate on
    /// each listed dimension must fall at-or-under the listed member
    /// ("For Market = East, …").
    pub scope: Vec<(DimensionId, MemberId)>,
    /// The defining expression.
    pub expr: Expr,
}

/// The cube's rule set.
#[derive(Debug, Clone, Default)]
pub struct RuleSet {
    measure_dim: Option<DimensionId>,
    default_agg: AggFn,
    per_measure: HashMap<MemberId, AggFn>,
    formulas: Vec<FormulaRule>,
}

impl RuleSet {
    /// An empty rule set (sum everywhere, no formulas).
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares which dimension holds measures.
    pub fn set_measure_dim(&mut self, dim: DimensionId) {
        self.measure_dim = Some(dim);
    }

    /// The measures dimension, if declared.
    pub fn measure_dim(&self) -> Option<DimensionId> {
        self.measure_dim
    }

    /// Sets the default aggregation function.
    pub fn set_default_agg(&mut self, agg: AggFn) {
        self.default_agg = agg;
    }

    /// Overrides the aggregation function for one measure member.
    pub fn set_measure_agg(&mut self, measure: MemberId, agg: AggFn) {
        self.per_measure.insert(measure, agg);
    }

    /// The aggregation function for a (possibly unknown) measure.
    pub fn agg_for(&self, measure: Option<MemberId>) -> AggFn {
        measure
            .and_then(|m| self.per_measure.get(&m).copied())
            .unwrap_or(self.default_agg)
    }

    /// Adds a formula rule.
    pub fn add_formula(&mut self, rule: FormulaRule) {
        self.formulas.push(rule);
    }

    /// All formulas (insertion order).
    pub fn formulas(&self) -> &[FormulaRule] {
        &self.formulas
    }

    /// Candidate formulas for a target measure, most specific scope first
    /// (later insertion breaks ties).
    pub fn candidates(&self, target: MemberId) -> Vec<&FormulaRule> {
        let mut c: Vec<(usize, &FormulaRule)> = self
            .formulas
            .iter()
            .enumerate()
            .filter(|(_, r)| r.target == target)
            .collect();
        c.sort_by(|(ia, a), (ib, b)| b.scope.len().cmp(&a.scope.len()).then(ib.cmp(ia)));
        c.into_iter().map(|(_, r)| r).collect()
    }

    /// Whether any formula targets `m`.
    pub fn has_formula(&self, m: MemberId) -> bool {
        self.formulas.iter().any(|r| r.target == m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acc_finalizes_all_fns() {
        let mut a = Acc::new();
        for v in [1.0, 2.0, 3.0, 6.0] {
            a.add(v);
        }
        assert_eq!(a.finalize(AggFn::Sum), CellValue::Num(12.0));
        assert_eq!(a.finalize(AggFn::Count), CellValue::Num(4.0));
        assert_eq!(a.finalize(AggFn::Min), CellValue::Num(1.0));
        assert_eq!(a.finalize(AggFn::Max), CellValue::Num(6.0));
        assert_eq!(a.finalize(AggFn::Avg), CellValue::Num(3.0));
    }

    #[test]
    fn empty_acc_is_bottom() {
        let a = Acc::new();
        for f in [AggFn::Sum, AggFn::Count, AggFn::Min, AggFn::Max, AggFn::Avg] {
            assert_eq!(a.finalize(f), CellValue::Null);
        }
    }

    #[test]
    fn acc_merge_matches_sequential() {
        let mut a = Acc::new();
        a.add(1.0);
        a.add(5.0);
        let mut b = Acc::new();
        b.add(-2.0);
        let mut merged = a;
        merged.merge(&b);
        let mut seq = Acc::new();
        for v in [1.0, 5.0, -2.0] {
            seq.add(v);
        }
        assert_eq!(merged, seq);
    }

    #[test]
    fn acc_skips_null_cells() {
        let mut a = Acc::new();
        a.add_cell(CellValue::Null);
        a.add_cell(CellValue::num(4.0));
        assert_eq!(a.count, 1);
        assert_eq!(a.finalize(AggFn::Avg), CellValue::Num(4.0));
    }

    #[test]
    fn expr_builders_and_refs() {
        let sales = MemberId(1);
        let cogs = MemberId(2);
        // Margin = 0.93 * Sales - COGS
        let e = Expr::constant(0.93)
            .mul(Expr::measure(sales))
            .sub(Expr::measure(cogs));
        assert_eq!(e.references(), vec![sales, cogs]);
    }

    #[test]
    fn candidates_prefer_specific_then_later() {
        let margin = MemberId(5);
        let mut rs = RuleSet::new();
        let global = FormulaRule {
            target: margin,
            scope: vec![],
            expr: Expr::constant(1.0),
        };
        let east = FormulaRule {
            target: margin,
            scope: vec![(DimensionId(0), MemberId(9))],
            expr: Expr::constant(2.0),
        };
        rs.add_formula(global.clone());
        rs.add_formula(east.clone());
        let c = rs.candidates(margin);
        assert_eq!(c[0], &east);
        assert_eq!(c[1], &global);
        // Later rule with the same specificity wins.
        let global2 = FormulaRule {
            target: margin,
            scope: vec![],
            expr: Expr::constant(3.0),
        };
        rs.add_formula(global2.clone());
        let c = rs.candidates(margin);
        assert_eq!(c[1], &global2);
        assert_eq!(c[2], &global);
    }

    #[test]
    fn agg_for_falls_back_to_default() {
        let mut rs = RuleSet::new();
        rs.set_default_agg(AggFn::Sum);
        rs.set_measure_agg(MemberId(3), AggFn::Avg);
        assert_eq!(rs.agg_for(Some(MemberId(3))), AggFn::Avg);
        assert_eq!(rs.agg_for(Some(MemberId(4))), AggFn::Sum);
        assert_eq!(rs.agg_for(None), AggFn::Sum);
    }
}
