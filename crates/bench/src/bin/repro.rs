//! Reproduces every evaluation figure of the paper and prints the series
//! its plots are drawn from, alongside the paper's expected shape.
//!
//! ```text
//! repro [--fig 11|12|13] [--table S] [--ablations] [--all] [--csv DIR]
//!       [--threads N] [--prefetch K]
//! ```
//!
//! With no arguments, `--all` is assumed. Timings are minima over a few
//! runs; see EXPERIMENTS.md for recorded results and commentary.

use bench::baselines::multiple_mdx;
use bench::figures::{Figure, Series};
use bench::min_time;
use bench::setup::{
    context, default_workforce, fig13_workforce, first_months, quarterly, run, Fig12Rig,
};
use olap_store::SeekModel;
use olap_workload::{Workforce, WorkforceConfig};
use whatif_core::{
    execute_chunked_scoped_opts, merge, phi, DestMap, ExecOpts, OrderPolicy, Semantics,
};

const ITERS: u32 = 3;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut figs: Vec<&str> = Vec::new();
    let mut table_s = false;
    let mut ablations = false;
    let mut csv_dir: Option<String> = None;
    let mut threads = 1usize;
    let mut prefetch = 0usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threads" => {
                i += 1;
                threads = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("--threads needs a positive integer");
                        std::process::exit(2);
                    });
            }
            "--prefetch" => {
                i += 1;
                prefetch = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--prefetch needs a non-negative integer");
                    std::process::exit(2);
                });
            }
            "--fig" => {
                i += 1;
                figs.push(match args.get(i).map(String::as_str) {
                    Some("11") => "11",
                    Some("12") => "12",
                    Some("13") => "13",
                    other => {
                        eprintln!("unknown figure {other:?} (expected 11, 12 or 13)");
                        std::process::exit(2);
                    }
                });
            }
            "--table" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("S") | Some("s") => table_s = true,
                    other => {
                        eprintln!("unknown table {other:?} (expected S)");
                        std::process::exit(2);
                    }
                }
            }
            "--ablations" => ablations = true,
            "--csv" => {
                i += 1;
                csv_dir = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--csv needs a directory");
                    std::process::exit(2);
                }));
            }
            "--all" => {
                figs = vec!["11", "12", "13"];
                table_s = true;
                ablations = true;
            }
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!(
                    "usage: repro [--fig N]… [--table S] [--ablations] [--all] [--csv DIR] \
                     [--threads N] [--prefetch K]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if figs.is_empty() && !table_s && !ablations {
        figs = vec!["11", "12", "13"];
        table_s = true;
        ablations = true;
    }

    let mut outputs: Vec<Figure> = Vec::new();
    if table_s {
        print_table_s();
    }
    if threads > 1 {
        println!("(executor parallelism: {threads} threads)");
        println!(
            "(note: with --threads >= 2, peak-buffer and chunks-scanned figures sum over \
             workers — each worker streams the base once — so they are not comparable to \
             the paper's serial Sec. 5 measurements; use --threads 1 to reproduce those)\n"
        );
    }
    if prefetch > 0 {
        println!("(chunk prefetch lookahead: {prefetch})");
    }
    for f in figs {
        let fig = match f {
            "11" => fig11(threads, prefetch),
            "12" => fig12(prefetch),
            "13" => fig13(threads, prefetch),
            _ => unreachable!(),
        };
        println!("{fig}");
        outputs.push(fig);
    }
    if ablations {
        run_ablations(threads, prefetch);
    }
    if let Some(dir) = csv_dir {
        std::fs::create_dir_all(&dir).expect("create csv dir");
        for fig in &outputs {
            let name = fig
                .id
                .replace(". ", "_")
                .replace([' ', '.'], "_")
                .to_lowercase();
            let path = format!("{dir}/{name}.csv");
            std::fs::write(&path, fig.to_csv()).expect("write csv");
            println!("wrote {path}");
        }
    }
}

/// "Table S": the dataset-summary statistics the paper's setup paragraph
/// reports, paper value vs. this build.
fn print_table_s() {
    println!("=== Table S — dataset summary (paper vs. this build) ===");
    let wf = default_workforce();
    let varying = wf.schema.varying(wf.department).unwrap();
    let rows: Vec<(&str, String, String)> = vec![
        ("dimensions", "7".into(), wf.schema.dim_count().to_string()),
        (
            "employees",
            "20,250".into(),
            wf.config.employees.to_string(),
        ),
        (
            "departments",
            "51".into(),
            wf.config.departments.to_string(),
        ),
        (
            "changing employees",
            "250 (1%)".into(),
            format!(
                "{} ({:.1}%)",
                wf.movers.len(),
                100.0 * wf.movers.len() as f64 / wf.config.employees as f64
            ),
        ),
        ("moves per changer", "1–11".into(), {
            let min = wf.movers.iter().map(|&(_, c)| c).min().unwrap_or(0);
            let max = wf.movers.iter().map(|&(_, c)| c).max().unwrap_or(0);
            format!("{min}–{max}")
        }),
        ("months", "12".into(), wf.config.months.to_string()),
        ("measures", "100".into(), wf.config.accounts.to_string()),
        ("scenarios", "5".into(), wf.config.scenarios.to_string()),
        (
            "employee instances",
            "—".into(),
            varying.instance_count().to_string(),
        ),
        (
            "input cells",
            "121,000,000".into(),
            wf.input_cells().to_string(),
        ),
        (
            "materialized chunks",
            "—".into(),
            wf.cube.chunk_count().to_string(),
        ),
    ];
    println!("{:<22} {:>14} {:>14}", "statistic", "paper", "this build");
    for (k, p, o) in rows {
        println!("{k:<22} {p:>14} {o:>14}");
    }
    println!("(scale: 1/10th linear — see DESIGN.md §2)\n");
}

fn fig11(threads: usize, prefetch: usize) -> Figure {
    eprintln!("[fig11] building workload…");
    let wf = default_workforce();
    if prefetch > 0 {
        wf.cube.start_io_threads(prefetch.min(4));
    }
    let mut ctx = context(&wf);
    ctx.threads = threads;
    ctx.prefetch = prefetch;
    let ks = [1usize, 2, 3, 4, 6, 8, 10, 12];
    let mut static_s = Vec::new();
    let mut fwd_s = Vec::new();
    let mut multi_s = Vec::new();
    for &k in &ks {
        let months = first_months(k);
        let q = wf.fig10a_query(&months);
        let t = min_time(ITERS, || run(&ctx, &q));
        static_s.push((k as f64, t.as_secs_f64() * 1e3));
        let q = wf.fig10a_query_sem(&months, "DYNAMIC FORWARD");
        let t = min_time(ITERS, || run(&ctx, &q));
        fwd_s.push((k as f64, t.as_secs_f64() * 1e3));
        let t = min_time(ITERS, || multiple_mdx(&ctx, &wf, &months));
        multi_s.push((k as f64, t.as_secs_f64() * 1e3));
        eprintln!("[fig11] k={k} done");
    }
    Figure {
        id: "Fig. 11".into(),
        title: "number of perspectives vs. query time".into(),
        x_label: "perspectives".into(),
        y_label: "query time (ms, min of runs)".into(),
        series: vec![
            Series {
                name: "Multiple MDX".into(),
                points: multi_s,
            },
            Series {
                name: "Static".into(),
                points: static_s,
            },
            Series {
                name: "Dynamic Forward".into(),
                points: fwd_s,
            },
        ],
        paper_expectation: "all linear in k; direct multi-perspective beats the Multiple-MDX \
                            simulation; Static ≈ Forward beyond ~6 perspectives"
            .into(),
    }
}

fn fig12(prefetch: usize) -> Figure {
    eprintln!("[fig12] building file-backed rig…");
    let rig = Fig12Rig::build();
    let base = (rig.other_chunks.len() / 6).max(10);
    rig.set_separation(base, SeekModel::default_disk());
    let base_bytes = rig.separation_bytes().max(1);
    // Saturate between ×2 and ×3 of the base separation, like a disk
    // arm's full stroke.
    // Saturates at 2.5× the base separation — the "full stroke".
    let seek = SeekModel {
        ns_per_byte: 2_000_000.0 / (2.5 * base_bytes as f64),
        max_ns: 2_000_000,
    };
    let mut pts = Vec::new();
    for multiple in 1..=5usize {
        rig.set_separation(base * multiple, seek);
        let sep = rig.separation_bytes();
        let t = min_time(ITERS, || rig.run_query_with(prefetch));
        pts.push((multiple as f64, t.as_secs_f64() * 1e6));
        eprintln!(
            "[fig12] ×{multiple}: separation {sep} bytes ({} chunks)",
            base * multiple
        );
    }
    let st = rig.wf.cube.with_pool(|pool| pool.stats());
    println!(
        "[fig12] pool prefetch counters (whole sweep): issued {}, hits {}, wasted {}",
        st.prefetch_issued, st.prefetch_hits, st.prefetch_wasted
    );
    let name = if prefetch > 0 {
        format!("Dynamic Forward (1 employee, prefetch {prefetch})")
    } else {
        "Dynamic Forward (1 employee)".to_string()
    };
    Figure {
        id: "Fig. 12".into(),
        title: "related-chunk co-location vs. query time".into(),
        x_label: "separation (multiples of base)".into(),
        y_label: "query time (µs, min of runs; simulated seek)".into(),
        series: vec![Series { name, points: pts }],
        paper_expectation: "rises with separation, then flattens once seek cost saturates".into(),
    }
}

fn fig13(threads: usize, prefetch: usize) -> Figure {
    eprintln!("[fig13] building 4-move workload…");
    let wf = fig13_workforce(25);
    if prefetch > 0 {
        wf.cube.start_io_threads(prefetch.min(4));
    }
    let mut ctx = context(&wf);
    ctx.threads = threads;
    ctx.prefetch = prefetch;
    let p = quarterly();
    let mut pts = Vec::new();
    for &n in &[5u32, 10, 15, 20, 25] {
        let q = wf.fig10c_query(&p, n);
        let t = min_time(ITERS, || run(&ctx, &q));
        pts.push((n as f64, t.as_secs_f64() * 1e3));
        eprintln!("[fig13] n={n} done");
    }
    Figure {
        id: "Fig. 13".into(),
        title: "varying member instances in scope vs. query time".into(),
        x_label: "employees (paper scale ×10)".into(),
        y_label: "query time (ms, min of runs)".into(),
        series: vec![Series {
            name: "Static, 4 perspectives".into(),
            points: pts,
        }],
        paper_expectation: "linear in the number of varying member instances".into(),
    }
}

fn run_ablations(threads: usize, prefetch: usize) {
    println!("=== Ablations ===");
    // Pebbling vs naive on the paper's Fig. 9 graph.
    let g = merge::MergeGraph::fig9();
    println!(
        "fig9 pebbles: heuristic {}, naive order {}, optimal {}",
        merge::pebbles_for_order(&g, &merge::heuristic_order(&g)),
        merge::pebbles_for_order(&g, &merge::naive_order(&g)),
        merge::optimal_pebbles(&g),
    );
    // Pebbling + Lemma 5.1 on a dense-move workload.
    let wf = Workforce::build(WorkforceConfig {
        employees: 400,
        departments: 12,
        changing: 120,
        employee_extent: 1,
        accounts: 4,
        scenarios: 2,
        ..WorkforceConfig::default()
    });
    if prefetch > 0 {
        wf.cube.start_io_threads(prefetch.min(4));
    }
    let opts = ExecOpts { threads, prefetch };
    let varying = wf.schema.varying(wf.department).unwrap();
    let vs_out = phi(Semantics::Forward, varying.instances(), &[0, 6], 12);
    let map = DestMap::build(&wf.cube, wf.department, &vs_out).unwrap();
    for (name, policy) in [
        ("pebbling        ", OrderPolicy::Pebbling),
        ("naive           ", OrderPolicy::Naive),
        (
            "param-dim first ",
            OrderPolicy::DimOrder(vec![0, 2, 3, 4, 5, 6, 1]),
        ),
    ] {
        let t = min_time(ITERS, || {
            execute_chunked_scoped_opts(&wf.cube, wf.department, &map, &policy, None, opts).unwrap()
        });
        let (_, report) =
            execute_chunked_scoped_opts(&wf.cube, wf.department, &map, &policy, None, opts)
                .unwrap();
        println!(
            "{name}: peak buffers {:>5}, predicted pebbles {:>4}, time {:>8.2} ms \
             (graph {} nodes / {} edges)",
            report.peak_out_buffers,
            report.predicted_pebbles,
            t.as_secs_f64() * 1e3,
            report.graph_nodes,
            report.graph_edges,
        );
    }
    println!();
}
