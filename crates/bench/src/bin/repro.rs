//! Reproduces every evaluation figure of the paper and prints the series
//! its plots are drawn from, alongside the paper's expected shape.
//!
//! ```text
//! repro [--fig 11|12|13] [--table S] [--ablations] [--replay] [--all]
//!       [--faults [N]] [--crash-points] [--serve-bench [N]]
//!       [--chaos-bench [N]] [--replica-bench [N]]
//!       [--toggle-bench [K]] [--kernel-bench] [--csv DIR]
//!       [--threads N] [--prefetch K] [--cache MB] [--kernel scalar|runs]
//! ```
//!
//! With no arguments, `--all` is assumed. Timings are minima over a few
//! runs; see EXPERIMENTS.md for recorded results and commentary.
//! Experiments that report counters also append machine-readable rows to
//! `BENCH_pr3.json` so the perf trajectory is tracked across PRs.

use bench::baselines::multiple_mdx;
use bench::figures::{Figure, Series};
use bench::min_time;
use bench::setup::{
    context, default_workforce, fig13_workforce, first_months, quarterly, run, Fig12Rig,
};
use olap_store::{FaultStore, SeekModel};
use olap_workload::{Workforce, WorkforceConfig};
use std::sync::Arc;
use whatif_core::{
    apply_opts, execute_chunked_scoped_opts, merge, phi, CacheStats, DestMap, ExecOpts, Fnv64,
    KernelKind, Mode, OrderPolicy, Scenario, ScenarioCache, Semantics, Strategy,
};

const ITERS: u32 = 3;

/// One machine-readable result row for `BENCH_pr3.json`.
struct BenchRow {
    name: String,
    wall_ms: f64,
    chunk_reads: u64,
    merges: u64,
    cache: CacheStats,
    /// (issued, hits, wasted) from the buffer pool.
    prefetch: (u64, u64, u64),
}

fn write_bench_json(path: &str, pr: u32, rows: &[BenchRow]) {
    let mut s = format!("{{\n  \"pr\": {pr},\n  \"experiments\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"wall_ms\": {:.3}, \"chunk_reads\": {}, \"merges\": {}, \
             \"cache\": {{\"lookups\": {}, \"hits\": {}, \"invalidations\": {}, \
             \"evictions\": {}, \"bytes\": {}}}, \
             \"prefetch\": {{\"issued\": {}, \"hits\": {}, \"wasted\": {}}}}}{}\n",
            r.name,
            r.wall_ms,
            r.chunk_reads,
            r.merges,
            r.cache.lookups,
            r.cache.hits,
            r.cache.invalidations,
            r.cache.evictions,
            r.cache.bytes,
            r.prefetch.0,
            r.prefetch.1,
            r.prefetch.2,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]\n}\n");
    match std::fs::write(path, s) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut figs: Vec<&str> = Vec::new();
    let mut table_s = false;
    let mut ablations = false;
    let mut replay = false;
    let mut csv_dir: Option<String> = None;
    let mut threads = 1usize;
    let mut prefetch = 0usize;
    let mut cache_mb = 0usize;
    let mut fault_schedules = 0u64;
    let mut crash_points = false;
    let mut serve_sessions = 0usize;
    let mut chaos_sessions = 0usize;
    let mut replica_followers = 0usize;
    let mut toggle_scenarios = 0usize;
    let mut kernel_bench = false;
    let mut kernel = KernelKind::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--crash-points" => crash_points = true,
            "--kernel-bench" => kernel_bench = true,
            "--kernel" => {
                i += 1;
                kernel = args
                    .get(i)
                    .and_then(|s| KernelKind::parse(s))
                    .unwrap_or_else(|| {
                        eprintln!("--kernel needs 'scalar' or 'runs'");
                        std::process::exit(2);
                    });
            }
            "--toggle-bench" => {
                // Optional scenario count; bare `--toggle-bench` toggles 2.
                match args.get(i + 1).and_then(|s| s.parse::<usize>().ok()) {
                    Some(n) if !(2..=8).contains(&n) => {
                        eprintln!("--toggle-bench needs 2..=8 scenarios");
                        std::process::exit(2);
                    }
                    Some(n) => {
                        toggle_scenarios = n;
                        i += 1;
                    }
                    None => toggle_scenarios = 2,
                }
            }
            "--serve-bench" => {
                // Optional session count; bare `--serve-bench` runs 32.
                match args.get(i + 1).and_then(|s| s.parse::<usize>().ok()) {
                    Some(0) => {
                        eprintln!("--serve-bench needs a positive session count");
                        std::process::exit(2);
                    }
                    Some(n) => {
                        serve_sessions = n;
                        i += 1;
                    }
                    None => serve_sessions = 32,
                }
            }
            "--chaos-bench" => {
                // Optional session count; bare `--chaos-bench` runs 8.
                match args.get(i + 1).and_then(|s| s.parse::<usize>().ok()) {
                    Some(0) => {
                        eprintln!("--chaos-bench needs a positive session count");
                        std::process::exit(2);
                    }
                    Some(n) => {
                        chaos_sessions = n;
                        i += 1;
                    }
                    None => chaos_sessions = 8,
                }
            }
            "--replica-bench" => {
                // Optional follower count; bare `--replica-bench` runs 4.
                match args.get(i + 1).and_then(|s| s.parse::<usize>().ok()) {
                    Some(0) => {
                        eprintln!("--replica-bench needs a positive follower count");
                        std::process::exit(2);
                    }
                    Some(n) => {
                        replica_followers = n;
                        i += 1;
                    }
                    None => replica_followers = 4,
                }
            }
            "--faults" => {
                // Optional schedule count; bare `--faults` runs 8.
                match args.get(i + 1).and_then(|s| s.parse::<u64>().ok()) {
                    Some(0) => {
                        eprintln!("--faults needs a positive schedule count");
                        std::process::exit(2);
                    }
                    Some(n) => {
                        fault_schedules = n;
                        i += 1;
                    }
                    None => fault_schedules = 8,
                }
            }
            "--cache" => {
                i += 1;
                cache_mb = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--cache needs a size in MB (0 disables)");
                    std::process::exit(2);
                });
            }
            "--replay" => replay = true,
            "--threads" => {
                i += 1;
                threads = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("--threads needs a positive integer");
                        std::process::exit(2);
                    });
            }
            "--prefetch" => {
                i += 1;
                prefetch = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--prefetch needs a non-negative integer");
                    std::process::exit(2);
                });
            }
            "--fig" => {
                i += 1;
                figs.push(match args.get(i).map(String::as_str) {
                    Some("11") => "11",
                    Some("12") => "12",
                    Some("13") => "13",
                    other => {
                        eprintln!("unknown figure {other:?} (expected 11, 12 or 13)");
                        std::process::exit(2);
                    }
                });
            }
            "--table" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("S") | Some("s") => table_s = true,
                    other => {
                        eprintln!("unknown table {other:?} (expected S)");
                        std::process::exit(2);
                    }
                }
            }
            "--ablations" => ablations = true,
            "--csv" => {
                i += 1;
                csv_dir = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--csv needs a directory");
                    std::process::exit(2);
                }));
            }
            "--all" => {
                figs = vec!["11", "12", "13"];
                table_s = true;
                ablations = true;
                replay = true;
            }
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!(
                    "usage: repro [--fig N]… [--table S] [--ablations] [--replay] [--all] \
                     [--faults [N]] [--crash-points] [--serve-bench [N]] [--chaos-bench [N]] \
                     [--replica-bench [N]] [--toggle-bench [K]] [--kernel-bench] [--csv DIR] \
                     [--threads N] [--prefetch K] [--cache MB] [--kernel scalar|runs]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if figs.is_empty()
        && !table_s
        && !ablations
        && !replay
        && fault_schedules == 0
        && !crash_points
        && serve_sessions == 0
        && chaos_sessions == 0
        && replica_followers == 0
        && toggle_scenarios == 0
        && !kernel_bench
    {
        figs = vec!["11", "12", "13"];
        table_s = true;
        ablations = true;
        replay = true;
    }

    let mut outputs: Vec<Figure> = Vec::new();
    if table_s {
        print_table_s();
    }
    if threads > 1 {
        println!("(executor parallelism: {threads} threads)");
        println!(
            "(note: with --threads >= 2, peak-buffer and chunks-scanned figures sum over \
             workers — each worker streams the base once — so they are not comparable to \
             the paper's serial Sec. 5 measurements; use --threads 1 to reproduce those. \
             The aggregator's shared-gauge `concurrent peak` figure, printed by \
             --kernel-bench, IS the true simultaneous residency)\n"
        );
    }
    if prefetch > 0 {
        println!("(chunk prefetch lookahead: {prefetch})");
    }
    if kernel == KernelKind::Scalar {
        println!("(executor kernel: scalar oracle — use --kernel runs for the fast path)");
    }
    for f in figs {
        let fig = match f {
            "11" => fig11(threads, prefetch, kernel),
            "12" => fig12(prefetch),
            "13" => fig13(threads, prefetch, kernel),
            _ => unreachable!(),
        };
        println!("{fig}");
        outputs.push(fig);
    }
    let mut bench_rows: Vec<BenchRow> = Vec::new();
    if ablations {
        run_ablations(threads, prefetch, kernel, &mut bench_rows);
    }
    if replay {
        run_replay(threads, prefetch, cache_mb, kernel, &mut bench_rows);
    }
    if fault_schedules > 0 {
        run_faults(threads, prefetch, kernel, fault_schedules);
    }
    if crash_points {
        run_crash_points();
    }
    if serve_sessions > 0 {
        run_serve_bench(serve_sessions, cache_mb);
    }
    if chaos_sessions > 0 {
        run_chaos_bench(chaos_sessions, cache_mb);
    }
    if replica_followers > 0 {
        run_replica_bench(replica_followers);
    }
    if toggle_scenarios > 0 {
        run_toggle_bench(toggle_scenarios, cache_mb, threads, prefetch, kernel);
    }
    if kernel_bench {
        run_kernel_bench(threads, prefetch);
    }
    if !bench_rows.is_empty() {
        write_bench_json("BENCH_pr3.json", 3, &bench_rows);
    }
    if let Some(dir) = csv_dir {
        std::fs::create_dir_all(&dir).expect("create csv dir");
        for fig in &outputs {
            let name = fig
                .id
                .replace(". ", "_")
                .replace([' ', '.'], "_")
                .to_lowercase();
            let path = format!("{dir}/{name}.csv");
            std::fs::write(&path, fig.to_csv()).expect("write csv");
            println!("wrote {path}");
        }
    }
}

/// "Table S": the dataset-summary statistics the paper's setup paragraph
/// reports, paper value vs. this build.
fn print_table_s() {
    println!("=== Table S — dataset summary (paper vs. this build) ===");
    let wf = default_workforce();
    let varying = wf.schema.varying(wf.department).unwrap();
    let rows: Vec<(&str, String, String)> = vec![
        ("dimensions", "7".into(), wf.schema.dim_count().to_string()),
        (
            "employees",
            "20,250".into(),
            wf.config.employees.to_string(),
        ),
        (
            "departments",
            "51".into(),
            wf.config.departments.to_string(),
        ),
        (
            "changing employees",
            "250 (1%)".into(),
            format!(
                "{} ({:.1}%)",
                wf.movers.len(),
                100.0 * wf.movers.len() as f64 / wf.config.employees as f64
            ),
        ),
        ("moves per changer", "1–11".into(), {
            let min = wf.movers.iter().map(|&(_, c)| c).min().unwrap_or(0);
            let max = wf.movers.iter().map(|&(_, c)| c).max().unwrap_or(0);
            format!("{min}–{max}")
        }),
        ("months", "12".into(), wf.config.months.to_string()),
        ("measures", "100".into(), wf.config.accounts.to_string()),
        ("scenarios", "5".into(), wf.config.scenarios.to_string()),
        (
            "employee instances",
            "—".into(),
            varying.instance_count().to_string(),
        ),
        (
            "input cells",
            "121,000,000".into(),
            wf.input_cells().to_string(),
        ),
        (
            "materialized chunks",
            "—".into(),
            wf.cube.chunk_count().to_string(),
        ),
    ];
    println!("{:<22} {:>14} {:>14}", "statistic", "paper", "this build");
    for (k, p, o) in rows {
        println!("{k:<22} {p:>14} {o:>14}");
    }
    println!("(scale: 1/10th linear — see DESIGN.md §2)\n");
}

fn fig11(threads: usize, prefetch: usize, kernel: KernelKind) -> Figure {
    eprintln!("[fig11] building workload…");
    let wf = default_workforce();
    if prefetch > 0 {
        wf.cube.start_io_threads(prefetch.min(4));
    }
    let mut ctx = context(&wf);
    ctx.threads = threads;
    ctx.prefetch = prefetch;
    ctx.kernel = kernel;
    let ks = [1usize, 2, 3, 4, 6, 8, 10, 12];
    let mut static_s = Vec::new();
    let mut fwd_s = Vec::new();
    let mut multi_s = Vec::new();
    for &k in &ks {
        let months = first_months(k);
        let q = wf.fig10a_query(&months);
        let t = min_time(ITERS, || run(&ctx, &q));
        static_s.push((k as f64, t.as_secs_f64() * 1e3));
        let q = wf.fig10a_query_sem(&months, "DYNAMIC FORWARD");
        let t = min_time(ITERS, || run(&ctx, &q));
        fwd_s.push((k as f64, t.as_secs_f64() * 1e3));
        let t = min_time(ITERS, || multiple_mdx(&ctx, &wf, &months));
        multi_s.push((k as f64, t.as_secs_f64() * 1e3));
        eprintln!("[fig11] k={k} done");
    }
    Figure {
        id: "Fig. 11".into(),
        title: "number of perspectives vs. query time".into(),
        x_label: "perspectives".into(),
        y_label: "query time (ms, min of runs)".into(),
        series: vec![
            Series {
                name: "Multiple MDX".into(),
                points: multi_s,
            },
            Series {
                name: "Static".into(),
                points: static_s,
            },
            Series {
                name: "Dynamic Forward".into(),
                points: fwd_s,
            },
        ],
        paper_expectation: "all linear in k; direct multi-perspective beats the Multiple-MDX \
                            simulation; Static ≈ Forward beyond ~6 perspectives"
            .into(),
    }
}

fn fig12(prefetch: usize) -> Figure {
    eprintln!("[fig12] building file-backed rig…");
    let rig = Fig12Rig::build();
    let base = (rig.other_chunks.len() / 6).max(10);
    rig.set_separation(base, SeekModel::default_disk());
    let base_bytes = rig.separation_bytes().max(1);
    // Saturate between ×2 and ×3 of the base separation, like a disk
    // arm's full stroke.
    // Saturates at 2.5× the base separation — the "full stroke".
    let seek = SeekModel {
        ns_per_byte: 2_000_000.0 / (2.5 * base_bytes as f64),
        max_ns: 2_000_000,
    };
    let mut pts = Vec::new();
    for multiple in 1..=5usize {
        rig.set_separation(base * multiple, seek);
        let sep = rig.separation_bytes();
        let t = min_time(ITERS, || rig.run_query_with(prefetch));
        pts.push((multiple as f64, t.as_secs_f64() * 1e6));
        eprintln!(
            "[fig12] ×{multiple}: separation {sep} bytes ({} chunks)",
            base * multiple
        );
    }
    let st = rig.wf.cube.with_pool(|pool| pool.stats());
    println!(
        "[fig12] pool prefetch counters (whole sweep): issued {}, hits {}, wasted {}",
        st.prefetch_issued, st.prefetch_hits, st.prefetch_wasted
    );
    let name = if prefetch > 0 {
        format!("Dynamic Forward (1 employee, prefetch {prefetch})")
    } else {
        "Dynamic Forward (1 employee)".to_string()
    };
    Figure {
        id: "Fig. 12".into(),
        title: "related-chunk co-location vs. query time".into(),
        x_label: "separation (multiples of base)".into(),
        y_label: "query time (µs, min of runs; simulated seek)".into(),
        series: vec![Series { name, points: pts }],
        paper_expectation: "rises with separation, then flattens once seek cost saturates".into(),
    }
}

fn fig13(threads: usize, prefetch: usize, kernel: KernelKind) -> Figure {
    eprintln!("[fig13] building 4-move workload…");
    let wf = fig13_workforce(25);
    if prefetch > 0 {
        wf.cube.start_io_threads(prefetch.min(4));
    }
    let mut ctx = context(&wf);
    ctx.threads = threads;
    ctx.prefetch = prefetch;
    ctx.kernel = kernel;
    let p = quarterly();
    let mut pts = Vec::new();
    for &n in &[5u32, 10, 15, 20, 25] {
        let q = wf.fig10c_query(&p, n);
        let t = min_time(ITERS, || run(&ctx, &q));
        pts.push((n as f64, t.as_secs_f64() * 1e3));
        eprintln!("[fig13] n={n} done");
    }
    Figure {
        id: "Fig. 13".into(),
        title: "varying member instances in scope vs. query time".into(),
        x_label: "employees (paper scale ×10)".into(),
        y_label: "query time (ms, min of runs)".into(),
        series: vec![Series {
            name: "Static, 4 perspectives".into(),
            points: pts,
        }],
        paper_expectation: "linear in the number of varying member instances".into(),
    }
}

fn run_ablations(
    threads: usize,
    prefetch: usize,
    kernel: KernelKind,
    bench_rows: &mut Vec<BenchRow>,
) {
    println!("=== Ablations ===");
    // Pebbling vs naive on the paper's Fig. 9 graph.
    let g = merge::MergeGraph::fig9();
    println!(
        "fig9 pebbles: heuristic {}, naive order {}, optimal {}",
        merge::pebbles_for_order(&g, &merge::heuristic_order(&g)),
        merge::pebbles_for_order(&g, &merge::naive_order(&g)),
        merge::optimal_pebbles(&g),
    );
    // Pebbling + Lemma 5.1 on a dense-move workload.
    let wf = Workforce::build(WorkforceConfig {
        employees: 400,
        departments: 12,
        changing: 120,
        employee_extent: 1,
        accounts: 4,
        scenarios: 2,
        ..WorkforceConfig::default()
    });
    if prefetch > 0 {
        wf.cube.start_io_threads(prefetch.min(4));
    }
    let opts = ExecOpts {
        threads,
        prefetch,
        cache: None,
        kernel,
        ..Default::default()
    };
    let varying = wf.schema.varying(wf.department).unwrap();
    let vs_out = phi(Semantics::Forward, varying.instances(), &[0, 6], 12);
    let map = DestMap::build(&wf.cube, wf.department, &vs_out).unwrap();
    for (name, policy) in [
        ("pebbling        ", OrderPolicy::Pebbling),
        ("naive           ", OrderPolicy::Naive),
        (
            "param-dim first ",
            OrderPolicy::DimOrder(vec![0, 2, 3, 4, 5, 6, 1]),
        ),
    ] {
        let t = min_time(ITERS, || {
            execute_chunked_scoped_opts(&wf.cube, wf.department, &map, &policy, None, opts.clone())
                .unwrap()
        });
        let (_, report) =
            execute_chunked_scoped_opts(&wf.cube, wf.department, &map, &policy, None, opts.clone())
                .unwrap();
        println!(
            "{name}: peak buffers {:>5}, predicted pebbles {:>4}, time {:>8.2} ms \
             (graph {} nodes / {} edges)",
            report.peak_out_buffers,
            report.predicted_pebbles,
            t.as_secs_f64() * 1e3,
            report.graph_nodes,
            report.graph_edges,
        );
        let st = wf.cube.with_pool(|pool| pool.stats());
        bench_rows.push(BenchRow {
            name: format!("ablation_{}", name.trim().replace([' ', '-'], "_")),
            wall_ms: t.as_secs_f64() * 1e3,
            chunk_reads: report.chunks_read,
            merges: report.merges,
            cache: CacheStats::default(),
            prefetch: (st.prefetch_issued, st.prefetch_hits, st.prefetch_wasted),
        });
    }
    println!();
}

/// `--faults N`: run the replay what-if under `N` seed-derived fault
/// schedules (see `FaultStore::with_random_plan`) and check the
/// robustness invariant of DESIGN.md §11 on each: the query either
/// returns `Err` or a perspective cube bit-identical to the fault-free
/// baseline — never a silently wrong answer. Exits non-zero if any
/// schedule violates the invariant, so the sweep is CI-usable.
fn run_faults(threads: usize, prefetch: usize, kernel: KernelKind, schedules: u64) {
    println!("=== Fault injection ({schedules} seeded schedules) ===");
    let build = || {
        Workforce::build(WorkforceConfig {
            employees: 400,
            departments: 12,
            changing: 80,
            employee_extent: 1,
            accounts: 4,
            scenarios: 2,
            ..WorkforceConfig::default()
        })
    };
    let strategy = Strategy::Chunked(OrderPolicy::Pebbling);
    let opts = ExecOpts {
        threads,
        prefetch,
        cache: None,
        kernel,
        ..Default::default()
    };
    let baseline = {
        let wf = build();
        let s = Scenario::negative(wf.department, [0, 6], Semantics::Forward, Mode::Visual);
        apply_opts(&wf.cube, &s, &strategy, None, opts.clone()).unwrap()
    };
    let mut violations = 0u64;
    let mut absorbed = 0u64;
    let mut errored = 0u64;
    for seed in 0..schedules {
        let wf = build();
        if prefetch > 0 {
            wf.cube.start_io_threads(prefetch.min(4));
        }
        wf.cube.flush().unwrap();
        let mut plan = String::new();
        wf.cube.with_pool(|pool| {
            pool.clear().unwrap();
            pool.wrap_store(|s| {
                let fs = FaultStore::with_random_plan(s, seed);
                plan = format!("{:?}", fs.plan());
                Box::new(fs)
            });
        });
        let scenario = Scenario::negative(wf.department, [0, 6], Semantics::Forward, Mode::Visual);
        let start = std::time::Instant::now();
        let r = apply_opts(&wf.cube, &scenario, &strategy, None, opts.clone());
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let st = wf.cube.with_pool(|pool| {
            pool.wait_prefetch_idle();
            pool.stats()
        });
        let fired = wf.cube.with_pool(|pool| {
            pool.store()
                .as_any()
                .downcast_ref::<FaultStore>()
                .map(|f| f.faults_injected())
                .unwrap_or(0)
        });
        let outcome = match r {
            Ok(res) if res.cube.same_cells(&baseline.cube).unwrap() => {
                absorbed += 1;
                "ok, bit-identical".to_string()
            }
            Ok(_) => {
                violations += 1;
                "SILENT DIVERGENCE — invariant violated".to_string()
            }
            Err(e) => {
                errored += 1;
                format!("err: {e}")
            }
        };
        println!(
            "seed {seed:>3}: {wall_ms:>8.2} ms, {fired:>2} faults fired, \
             {:>2} read errors, {:>2} retries — {outcome}",
            st.read_errors, st.retries
        );
        println!("          plan {plan}");
    }
    println!(
        "invariant held on {}/{schedules} schedules \
         ({absorbed} absorbed, {errored} clean errors)",
        absorbed + errored
    );
    println!();
    if violations > 0 {
        eprintln!("{violations} schedule(s) produced a silently wrong answer");
        std::process::exit(1);
    }
}

/// `--crash-points`: the WAL atomicity sweep of DESIGN.md §12. For every
/// (checksums × compression) store configuration, run a pool flush with a
/// crash injected after every possible physical store op (WAL appends,
/// main-log appends, fsyncs, truncations) and reopen. The recovered store
/// must be cell-identical to the pre-flush or the post-flush image —
/// never a mix. Also times steady-state flushes with the WAL on vs. off
/// (the overhead number recorded in EXPERIMENTS.md). Exits non-zero on
/// any violation, so the sweep is CI-usable.
fn run_crash_points() {
    use olap_store::{BufferPool, CellValue, Chunk, ChunkId, ChunkStore, FileStore};
    use std::collections::BTreeMap;

    println!("=== WAL crash-point sweep ===");
    let dir = std::env::temp_dir();
    let tmp = |name: &str| dir.join(format!("repro-crash-{}-{name}.cube", std::process::id()));
    let cleanup = |p: &std::path::Path| {
        std::fs::remove_file(p).ok();
        std::fs::remove_file(olap_store::wal::sidecar_path(p)).ok();
    };
    let chunk = |v: f64| {
        let mut c = Chunk::new_dense(vec![16]);
        for j in 0..16u32 {
            c.set(j, CellValue::num(v + j as f64));
        }
        c
    };
    let image = |s: &FileStore| -> BTreeMap<u64, Chunk> {
        s.ids()
            .into_iter()
            .map(|id| (id.0, s.read(id).unwrap()))
            .collect()
    };
    let matches = |got: &BTreeMap<u64, Chunk>, want: &BTreeMap<u64, Chunk>| {
        got.len() == want.len()
            && got
                .iter()
                .all(|(id, c)| want.get(id).is_some_and(|w| c.same_cells(w)))
    };

    let mut violations = 0u64;
    for checksums in [false, true] {
        for compressed in [false, true] {
            let tag = format!(
                "{}/{}",
                if compressed { "olc2" } else { "olc1" },
                if checksums { "crc" } else { "plain" }
            );
            let pre: BTreeMap<u64, Chunk> = (0..6u64).map(|i| (i, chunk(i as f64))).collect();
            let mut post = pre.clone();
            for i in 0..4u64 {
                post.insert(i, chunk(1000.0 + i as f64));
            }
            post.insert(42, chunk(4242.0));
            let dirty: Vec<u64> = vec![0, 1, 2, 3, 42];

            // One run; `crash_op = None` is the dry run that learns the
            // deterministic op-schedule length.
            let run = |crash_op: Option<u64>, path: &std::path::Path| -> (bool, u64) {
                cleanup(path);
                let mut s = FileStore::create(path).unwrap();
                s.set_checksums(checksums);
                s.set_compression(compressed);
                let pool = BufferPool::new(Box::new(s), 32);
                for (id, c) in &pre {
                    pool.put(ChunkId(*id), c.clone()).unwrap();
                }
                pool.flush_all().unwrap();
                let ops_at = |pool: &BufferPool| {
                    let guard = pool.store();
                    guard
                        .as_any()
                        .downcast_ref::<FileStore>()
                        .unwrap()
                        .phys_ops()
                };
                let before = ops_at(&pool);
                {
                    let mut guard = pool.store_mut();
                    let fs = guard.as_any_mut().downcast_mut::<FileStore>().unwrap();
                    fs.set_crash_after_ops(crash_op);
                }
                for id in &dirty {
                    pool.put(ChunkId(*id), post[id].clone()).unwrap();
                }
                let ok = pool.flush_all().is_ok();
                let ops = ops_at(&pool) - before;
                (ok, ops)
            };

            let dry = tmp(&format!("dry-{}-{}", checksums as u8, compressed as u8));
            let (_, total_ops) = run(None, &dry);
            cleanup(&dry);

            let (mut rolled_back, mut redone) = (0u64, 0u64);
            let path = tmp(&format!("k-{}-{}", checksums as u8, compressed as u8));
            for k in 0..=total_ops {
                let (ok, _) = run(Some(k), &path);
                let got = image(&FileStore::open(&path).unwrap());
                if ok && !matches(&got, &post) {
                    violations += 1;
                    eprintln!("{tag}: k={k} flush committed but post image lost");
                } else if matches(&got, &pre) {
                    rolled_back += 1;
                } else if matches(&got, &post) {
                    redone += 1;
                } else {
                    violations += 1;
                    eprintln!("{tag}: k={k} recovered a MIXED image ({:?})", got.keys());
                }
                cleanup(&path);
            }
            println!(
                "{tag:<11}: {total_ops:>2} crash points — {rolled_back} rolled back, \
                 {redone} redone, all exact"
            );
        }
    }

    // Steady-state overhead, three durability tiers: atomic+durable
    // (WAL on), durable-but-torn-on-crash (WAL off, fsync per flush),
    // and neither (WAL off, no fsync — the pure logging baseline).
    let mut per_flush = [0.0f64; 3];
    for (slot, wal_on, durable, name) in [
        (0usize, true, false, "ovh-wal"),
        (1, false, true, "ovh-fsync"),
        (2, false, false, "ovh-none"),
    ] {
        let path = tmp(name);
        cleanup(&path);
        let mut s = FileStore::create(&path).unwrap();
        s.set_wal(wal_on);
        let pool = BufferPool::new(Box::new(s), 32);
        pool.set_durable_flush(durable);
        const FLUSHES: u32 = 200;
        let start = std::time::Instant::now();
        for round in 0..FLUSHES {
            for i in 0..8u64 {
                let mut c = Chunk::new_dense(vec![16]);
                c.set(0, CellValue::num((round as u64 * 8 + i) as f64));
                pool.put(ChunkId(i), c).unwrap();
            }
            pool.flush_all().unwrap();
        }
        per_flush[slot] = start.elapsed().as_secs_f64() * 1e6 / f64::from(FLUSHES);
        cleanup(&path);
    }
    println!(
        "steady-state flush (8 dirty chunks): WAL {:.1} µs, fsync-only {:.1} µs \
         ({:+.1}% for atomicity), no-durability {:.1} µs",
        per_flush[0],
        per_flush[1],
        100.0 * (per_flush[0] / per_flush[1] - 1.0),
        per_flush[2],
    );
    println!();
    if violations > 0 {
        eprintln!("{violations} crash point(s) violated flush atomicity");
        std::process::exit(1);
    }
}

/// The one-perspective edit sequences replayed by `run_replay` (also
/// mirrored by the `scenario_cache` integration test). Each sequence
/// starts from a base perspective set and applies K=8 single-perspective
/// edits, so the cache sees 9 scenarios in a row.
pub fn replay_scenarios(
    department: olap_model::DimensionId,
    semantics: Semantics,
) -> Vec<Scenario> {
    let perspective_sets: Vec<Vec<u32>> = match semantics {
        // The analyst keeps early history pinned and nudges the *last*
        // perspective: under DYNAMIC FORWARD only movers with a move
        // after the second-to-last perspective are invalidated.
        Semantics::Forward => vec![
            vec![0, 3, 6, 9, 10],
            vec![0, 3, 6, 9, 11],
            vec![0, 3, 6, 9, 10],
            vec![0, 3, 6, 9, 11],
            vec![0, 3, 6, 9, 10],
            vec![0, 3, 6, 9, 11],
            vec![0, 3, 6, 9, 10],
            vec![0, 3, 6, 9, 11],
            vec![0, 3, 6, 9, 10],
        ],
        // Rotating one-month nudges: under STATIC an edit only touches
        // instances whose validity straddles the moved moment, so almost
        // every component survives each edit.
        _ => vec![
            vec![0, 3, 6, 9],
            vec![0, 3, 6, 10],
            vec![0, 3, 7, 10],
            vec![0, 4, 7, 10],
            vec![1, 4, 7, 10],
            vec![1, 4, 7, 9],
            vec![1, 4, 6, 9],
            vec![1, 3, 6, 9],
            vec![0, 3, 6, 9],
        ],
    };
    perspective_sets
        .into_iter()
        .map(|p| Scenario::negative(department, p, semantics, Mode::Visual))
        .collect()
}

/// The scenario-delta replay experiment: an analyst's edit session.
/// Each sequence of K=8 one-perspective edits runs twice — cache off,
/// then cache on — and the work counters are compared. The win is
/// structural on any hardware: every merge component whose fate table
/// an edit leaves unchanged is served from cache instead of being
/// re-read and re-merged.
fn run_replay(
    threads: usize,
    prefetch: usize,
    cache_mb: usize,
    kernel: KernelKind,
    bench_rows: &mut Vec<BenchRow>,
) {
    println!("=== Scenario-delta replay (K=8 one-perspective edits) ===");
    let wf = Workforce::build(WorkforceConfig {
        employees: 400,
        departments: 12,
        changing: 80,
        employee_extent: 1,
        accounts: 4,
        scenarios: 2,
        ..WorkforceConfig::default()
    });
    if prefetch > 0 {
        wf.cube.start_io_threads(prefetch.min(4));
    }
    let strategy = Strategy::Chunked(OrderPolicy::Pebbling);
    let mb = if cache_mb > 0 { cache_mb } else { 64 };

    for (sem_name, semantics) in [("fwd", Semantics::Forward), ("static", Semantics::Static)] {
        let scenarios = replay_scenarios(wf.department, semantics);
        for (phase, cache) in [
            ("cache_off", None),
            (
                "cache_on",
                Some(Arc::new(ScenarioCache::with_capacity_mb(mb))),
            ),
        ] {
            let label = format!("replay_{sem_name}_{phase}");
            let opts = ExecOpts {
                threads,
                prefetch,
                cache: cache.clone(),
                kernel,
                ..Default::default()
            };
            let pool_baseline = wf.cube.with_pool(|pool| {
                pool.wait_prefetch_idle();
                pool.stats()
            });
            let start = std::time::Instant::now();
            let mut chunk_reads = 0u64;
            let mut merges = 0u64;
            let mut served = 0u64;
            for s in &scenarios {
                let r = apply_opts(&wf.cube, s, &strategy, None, opts.clone()).unwrap();
                chunk_reads += r.report.chunks_read;
                merges += r.report.merges;
                served += r.report.cache_chunks_served;
            }
            let wall_ms = start.elapsed().as_secs_f64() * 1e3;
            let cstats = cache.as_ref().map(|c| c.stats()).unwrap_or_default();
            let st = wf
                .cube
                .with_pool(|pool| {
                    pool.wait_prefetch_idle();
                    pool.stats()
                })
                .delta(&pool_baseline);
            let hit_rate = if cstats.lookups > 0 {
                100.0 * cstats.hits as f64 / cstats.lookups as f64
            } else {
                0.0
            };
            println!(
                "{label:<24}: {wall_ms:>8.2} ms, {chunk_reads:>6} chunk reads, \
                 {merges:>6} merges, {served:>6} chunks served from cache \
                 (hit rate {hit_rate:.1}%, {} invalidations, {} KiB resident)",
                cstats.invalidations,
                cstats.bytes / 1024,
            );
            bench_rows.push(BenchRow {
                name: label,
                wall_ms,
                chunk_reads,
                merges,
                cache: cstats,
                prefetch: (st.prefetch_issued, st.prefetch_hits, st.prefetch_wasted),
            });
        }
    }
    println!();
}

/// `--serve-bench N`: the multi-tenant correctness-and-throughput gate.
/// Starts an in-process `olap-server` over the `bench` dataset (the
/// `--replay` workforce configuration) with a shared scenario-delta
/// cache, replays N concurrent edit sessions against it over TCP, and
/// asserts every response is byte-identical to a serial replay of the
/// same scripts. The shell's `.apply` replies carry only deterministic
/// fields (cell count, an order-independent digest, pass count), so any
/// cross-session interference — a poisoned cache entry, a torn eviction,
/// a budget leaking between sessions — shows up as a diff, not a flake.
fn run_serve_bench(sessions: usize, cache_mb: usize) {
    use olap_server::{Server, ServerConfig, STATUS_OK};
    use polap_cli::{proto::Client, Dataset, Outcome, Session, SharedData};
    use std::sync::Arc;

    let cache_mb = if cache_mb == 0 { 64 } else { cache_mb };
    println!("=== serve-bench — {sessions} concurrent sessions vs. serial replay ===");

    // Every session replays a deterministic edit script: the analyst
    // keeps editing the perspective set and re-applying, then asks for
    // a budgeted rollup. Scripts differ per session so the shared cache
    // sees both reuse (sessions on the same step) and churn.
    let script = |i: usize| -> Vec<String> {
        const MOMENT_SETS: [&str; 5] = ["0,3,6,9", "0,3", "6,9", "0,9", "3,6"];
        let mut cmds = Vec::new();
        for step in 0..5 {
            let sem = if (i + step).is_multiple_of(2) {
                "forward"
            } else {
                "static"
            };
            cmds.push(format!(
                ".apply {sem} {}",
                MOMENT_SETS[(i + 2 * step) % MOMENT_SETS.len()]
            ));
        }
        cmds.push(".rollup".to_string());
        cmds
    };

    // Serial baseline: the same scripts, one session after another, on a
    // private copy of the dataset with no cache at all.
    print!("serial baseline… ");
    std::io::Write::flush(&mut std::io::stdout()).ok();
    let serial_t0 = std::time::Instant::now();
    let serial_data = Arc::new(SharedData::load(Dataset::Bench));
    let expected: Vec<Vec<String>> = (0..sessions)
        .map(|i| {
            let mut session = Session::attach(serial_data.clone());
            script(i)
                .iter()
                .map(|cmd| match session.handle(cmd) {
                    Outcome::Continue(text) | Outcome::Quit(text) | Outcome::Deadline(text) => text,
                })
                .collect()
        })
        .collect();
    let serial_elapsed = serial_t0.elapsed();
    println!("done in {:.2} ms", serial_elapsed.as_secs_f64() * 1e3);

    let mut server_data = SharedData::load(Dataset::Bench);
    server_data.set_cache_mb(cache_mb);
    let server = Server::start(
        Arc::new(server_data),
        "127.0.0.1:0",
        ServerConfig {
            max_sessions: sessions,
            ..ServerConfig::default()
        },
    )
    .expect("bind serve-bench server");
    let addr = server.addr();

    let t0 = std::time::Instant::now();
    let workers: Vec<_> = (0..sessions)
        .map(|i| {
            std::thread::spawn(move || -> (Vec<String>, std::time::Duration) {
                let mut client = loop {
                    match Client::connect(addr) {
                        Ok(c) => break c,
                        // Slots free asynchronously as siblings quit.
                        Err(e) if e.kind() == std::io::ErrorKind::ConnectionRefused => {
                            std::thread::sleep(std::time::Duration::from_millis(2));
                        }
                        Err(e) => panic!("session {i}: connect: {e}"),
                    }
                };
                let mut replies = Vec::new();
                let mut busy = std::time::Duration::ZERO;
                for cmd in script(i) {
                    let q0 = std::time::Instant::now();
                    let (status, text) = client.request(&cmd).expect("request");
                    busy += q0.elapsed();
                    assert_eq!(status, STATUS_OK, "session {i}: {cmd}: {text}");
                    replies.push(text);
                }
                client.request(".quit").expect("quit");
                (replies, busy)
            })
        })
        .collect();
    let mut mismatches = 0usize;
    let mut requests = 0usize;
    let mut busy_total = std::time::Duration::ZERO;
    for (i, w) in workers.into_iter().enumerate() {
        let (replies, busy) = w.join().expect("serve-bench session panicked");
        busy_total += busy;
        requests += replies.len();
        if replies != expected[i] {
            mismatches += 1;
            for (got, want) in replies.iter().zip(&expected[i]) {
                if got != want {
                    eprintln!("session {i} diverged:\n  serial: {want}\n  server: {got}");
                }
            }
        }
    }
    let elapsed = t0.elapsed();
    server.shutdown();

    println!(
        "{sessions} sessions × {} requests: {:.2} ms wall ({:.0} req/s), \
         mean latency {:.2} ms, serial replay {:.2} ms",
        requests / sessions,
        elapsed.as_secs_f64() * 1e3,
        requests as f64 / elapsed.as_secs_f64(),
        busy_total.as_secs_f64() * 1e3 / requests as f64,
        serial_elapsed.as_secs_f64() * 1e3,
    );
    if mismatches > 0 {
        eprintln!("FAIL: {mismatches}/{sessions} sessions diverged from the serial replay");
        std::process::exit(1);
    }
    println!("all {sessions} sessions byte-identical to the serial replay\n");
}

/// `--chaos-bench N`: the network-fault gate (DESIGN.md §16). N
/// concurrent edit sessions run through a `ChaosProxy` whose
/// seed-reproducible plan injects delays, mid-frame cuts,
/// partial-frame stalls and refusals, against a server with idle
/// timeouts and drain-on-shutdown, using clients with bounded
/// retry/backoff and journal replay. Three fault-plan seeds run
/// back-to-back; the run exits non-zero unless, for every seed:
///
/// * every request either fails with a clean client-side error or
///   returns a reply byte-identical to a faultless serial replay of
///   the same script (the retry journal makes a reconnected session
///   answer exactly like the uninterrupted one);
/// * the server ends with zero live sessions — no admission slot
///   leaked by a cut, stalled or refused connection;
/// * the whole round finishes inside a wall-clock budget (no hangs).
fn run_chaos_bench(sessions: usize, cache_mb: usize) {
    use olap_server::chaos::{random_plan, ChaosProxy};
    use olap_server::{RetryPolicy, Server, ServerConfig, STATUS_OK};
    use polap_cli::{proto::Client, Dataset, Outcome, Session, SharedData};
    use std::sync::Arc;

    const SEEDS: [u64; 3] = [11, 29, 47];
    const ROUND_BUDGET: std::time::Duration = std::time::Duration::from_secs(120);

    let cache_mb = if cache_mb == 0 { 64 } else { cache_mb };
    println!("=== chaos-bench — {sessions} sessions through a fault proxy, seeds {SEEDS:?} ===");

    // The script leans on state-setting verbs on purpose: a fault that
    // kills the connection after `.fork`/`.apply` forces the client's
    // journal replay to rebuild the forest in a fresh session, and any
    // replay bug diverges the digests below.
    let script = |i: usize| -> Vec<String> {
        const MOMENT_SETS: [&str; 5] = ["0,3,6,9", "0,3", "6,9", "0,9", "3,6"];
        let sem = |step: usize| {
            if (i + step).is_multiple_of(2) {
                "forward"
            } else {
                "static"
            }
        };
        vec![
            format!(".apply {} {}", sem(0), MOMENT_SETS[i % 5]),
            ".fork alt".to_string(),
            format!(".apply {} {}", sem(1), MOMENT_SETS[(i + 2) % 5]),
            ".switch main".to_string(),
            ".apply".to_string(), // re-run main's scenario from the forest
            format!(".apply {} {}", sem(2), MOMENT_SETS[(i + 4) % 5]),
        ]
    };

    // Faultless serial baseline on a private, cache-less copy.
    print!("serial baseline… ");
    std::io::Write::flush(&mut std::io::stdout()).ok();
    let serial_data = Arc::new(SharedData::load(Dataset::Bench));
    let expected: Vec<Vec<String>> = (0..sessions)
        .map(|i| {
            let mut session = Session::attach(serial_data.clone());
            script(i)
                .iter()
                .map(|cmd| match session.handle(cmd) {
                    Outcome::Continue(text) | Outcome::Quit(text) | Outcome::Deadline(text) => text,
                })
                .collect()
        })
        .collect();
    println!("done");

    let mut failed = false;
    for seed in SEEDS {
        let t0 = std::time::Instant::now();
        let mut server_data = SharedData::load(Dataset::Bench);
        server_data.set_cache_mb(cache_mb);
        let server = Server::start(
            Arc::new(server_data),
            "127.0.0.1:0",
            ServerConfig {
                // Headroom over the session count: reconnects briefly
                // hold a dying slot and a fresh one at once.
                max_sessions: sessions * 2 + 4,
                idle_timeout_ms: 2_000,
                drain_grace_ms: 500,
                ..ServerConfig::default()
            },
        )
        .expect("bind chaos-bench server");
        // Plan over more connections than sessions: every reconnect
        // advances the accept-order index into fresh faults.
        let proxy = ChaosProxy::start(server.addr(), random_plan(seed, (sessions * 8) as u64))
            .expect("bind chaos proxy");
        let addr = proxy.addr();

        let workers: Vec<_> = (0..sessions)
            .map(|i| {
                let script = script(i);
                std::thread::spawn(move || -> (Vec<String>, usize, Option<String>) {
                    let retry = RetryPolicy::retries(10, seed ^ ((i as u64) << 8));
                    // The initial connect can be hit by a Refuse fault
                    // (EOF before greeting); bounded manual retries.
                    let mut client = None;
                    for _ in 0..20 {
                        match Client::connect_with(addr, retry.clone()) {
                            Ok(c) => {
                                client = Some(c);
                                break;
                            }
                            Err(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
                        }
                    }
                    let Some(mut client) = client else {
                        return (Vec::new(), 0, Some("never connected".to_string()));
                    };
                    let mut replies = Vec::new();
                    let mut clean_errors = 0usize;
                    for cmd in script {
                        match client.request(&cmd) {
                            Ok((STATUS_OK, text)) => replies.push(text),
                            // A non-OK frame without a deadline set
                            // means the server closed on us; count it
                            // as a clean error and stop — the rest of
                            // the script has no session.
                            Ok((_, _text)) => {
                                clean_errors += 1;
                                break;
                            }
                            Err(_) => {
                                clean_errors += 1;
                                break;
                            }
                        }
                    }
                    let _ = client.request(".quit");
                    (replies, clean_errors, None)
                })
            })
            .collect();

        let mut ok_replies = 0usize;
        let mut clean_errors = 0usize;
        let mut mismatches = 0usize;
        for (i, w) in workers.into_iter().enumerate() {
            let (replies, errs, fatal) = w.join().expect("chaos-bench session panicked");
            if let Some(msg) = fatal {
                eprintln!("session {i}: {msg}");
                clean_errors += 1;
                continue;
            }
            clean_errors += errs;
            ok_replies += replies.len();
            // Every acknowledged reply must match the faultless serial
            // replay prefix (a clean error may truncate the script).
            for (got, want) in replies.iter().zip(&expected[i]) {
                if got != want {
                    mismatches += 1;
                    eprintln!(
                        "seed {seed} session {i} diverged:\n  serial: {want}\n  chaos:  {got}"
                    );
                }
            }
        }

        // More accepted connections than sessions = reconnects = faults
        // actually fired and were healed.
        let conns = proxy.connections();
        proxy.shutdown();
        // Every slot must come home: cut, stalled, refused or drained,
        // no connection may leak its admission slot.
        let mut leaked = server.active_sessions();
        let drain_t0 = std::time::Instant::now();
        while leaked > 0 && drain_t0.elapsed() < std::time::Duration::from_secs(10) {
            std::thread::sleep(std::time::Duration::from_millis(10));
            leaked = server.active_sessions();
        }
        let forced = server.shutdown();
        let elapsed = t0.elapsed();
        println!(
            "seed {seed}: {ok_replies} replies matched, {clean_errors} clean errors, \
             {mismatches} mismatches, {conns} connections for {sessions} sessions, \
             {leaked} leaked, {forced} force-closed, {:.2} s",
            elapsed.as_secs_f64(),
        );
        if mismatches > 0 || leaked > 0 || elapsed > ROUND_BUDGET {
            failed = true;
        }
    }
    if failed {
        eprintln!("FAIL: chaos-bench violated a gate (divergence, leaked slot, or over budget)");
        std::process::exit(1);
    }
    println!("chaos-bench: every faulted request errored cleanly or matched the serial replay\n");
}

/// `--replica-bench N`: the WAL-shipping replication gate (DESIGN.md
/// §17). A file-backed leader commits a series of flushes while N
/// follower replicas — each seeded from the base image — stream them
/// with `.replicate`, under a per-follower random kill/restart
/// schedule (crash budgets injected mid-apply, then a fresh attach of
/// the same file). Gates, per seed:
///
/// * every follower restart lands on a *committed leader position*
///   (the recovered file is the pre- or post-image of some shipped
///   transaction, never a blend);
/// * every read served during catch-up either errors cleanly or
///   matches the leader's serial reply at one of its committed
///   epochs;
/// * every follower converges to a byte-identical store file;
/// * no session or sync thread panics (the registry and caches use
///   non-poisoning locks), and the round stays under its wall budget.
///
/// Exits non-zero on any violation (CI-usable).
fn run_replica_bench(followers: usize) {
    use olap_cube::StoreBackend;
    use olap_server::{enable_replication, Client, Follower, Server, ServerConfig, STATUS_OK};
    use olap_store::FileStore;
    use polap_cli::{Dataset, Outcome, Session, SharedData};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Mutex;

    const SEEDS: [u64; 3] = [11, 29, 47];
    const ROUNDS: u32 = 5;
    const READ: &str = ".apply forward 1,3";
    const ROUND_BUDGET: std::time::Duration = std::time::Duration::from_secs(120);

    println!("=== replica-bench — {followers} followers over WAL shipping, seeds {SEEDS:?} ===");
    let tmp = |tag: &str, seed: u64| {
        std::env::temp_dir().join(format!(
            "repro-replica-{}-{tag}-{seed}.cube",
            std::process::id()
        ))
    };
    let cleanup = |p: &std::path::Path| {
        std::fs::remove_file(p).ok();
        std::fs::remove_file(olap_store::wal::sidecar_path(p)).ok();
    };

    let mut failed = false;
    for seed in SEEDS {
        let t0 = std::time::Instant::now();
        let lpath = tmp("leader", seed);
        cleanup(&lpath);
        let leader_shared = Arc::new(
            SharedData::load_with_backend(Dataset::Bench, StoreBackend::File(lpath.clone()))
                .expect("file-backed bench dataset"),
        );
        let base = enable_replication(&leader_shared).expect("leader store is file-backed");
        let fpaths: Vec<_> = (0..followers)
            .map(|i| tmp(&format!("f{i}"), seed))
            .collect();
        for p in &fpaths {
            cleanup(p);
            std::fs::copy(&lpath, p).expect("seed follower base image");
        }
        let cfg = ServerConfig {
            max_sessions: followers * 4 + 8,
            drain_grace_ms: 500,
            ..ServerConfig::default()
        };
        let leader_srv =
            Server::start(leader_shared.clone(), "127.0.0.1:0", cfg).expect("bind leader");
        let leader_addr = leader_srv.addr();

        // Shared truth the follower threads check against: committed
        // positions (a recovered follower must stand at one), the
        // leader's serial reply at each committed epoch (a read during
        // catch-up must match one), and the done/final-position flags.
        let committed = Arc::new(Mutex::new(vec![base]));
        let oracle = Arc::new(Mutex::new(Vec::<String>::new()));
        let done = Arc::new(AtomicBool::new(false));
        let final_pos = Arc::new(AtomicU64::new(0));
        {
            // The epoch-0 (base image) reply.
            let mut s = Session::attach(leader_shared.clone());
            if let Outcome::Continue(text) = s.handle(READ) {
                oracle.lock().unwrap().push(text);
            }
        }

        let workers: Vec<_> = fpaths
            .iter()
            .enumerate()
            .map(|(i, fpath)| {
                let fpath = fpath.clone();
                let committed = committed.clone();
                let done = done.clone();
                let final_pos = final_pos.clone();
                std::thread::spawn(move || -> (u32, u32, u32, Vec<String>, Vec<String>) {
                    let mut rng = StdRng::seed_from_u64(seed ^ ((i as u64 + 1) << 16));
                    let mut restarts = 0u32;
                    let mut reads_ok = 0u32;
                    let mut clean_errors = 0u32;
                    let mut replies: Vec<String> = Vec::new();
                    let mut violations: Vec<String> = Vec::new();
                    loop {
                        // (Re)start: attach the store file — crash
                        // recovery runs here — and serve + sync.
                        let fshared = Arc::new(
                            SharedData::load_with_backend(
                                Dataset::Bench,
                                StoreBackend::Attach(fpath.clone()),
                            )
                            .expect("attach follower image"),
                        );
                        let follower =
                            match Follower::start(fshared.clone(), "127.0.0.1:0", cfg, leader_addr)
                            {
                                Ok(f) => f,
                                Err(e) => {
                                    violations.push(format!("follower {i} failed to start: {e}"));
                                    break;
                                }
                            };
                        restarts += 1;
                        // Gate: a restarted follower stands at a
                        // committed leader position — the recovered
                        // image is pre- or post- some shipped
                        // transaction, never a blend.
                        let pos = follower.position();
                        if !committed.lock().unwrap().contains(&pos) {
                            violations.push(format!(
                                "follower {i} recovered to uncommitted position {pos}"
                            ));
                        }
                        std::thread::sleep(std::time::Duration::from_millis(
                            rng.random_range(20..120),
                        ));
                        // A read mid-catch-up: clean error or a reply
                        // the leader gave at some committed epoch
                        // (validated after the run — the oracle may
                        // still be growing here).
                        match Client::connect(follower.addr()) {
                            Ok(mut c) => match c.request(READ) {
                                Ok((STATUS_OK, text)) => {
                                    reads_ok += 1;
                                    replies.push(text);
                                    let _ = c.request(".quit");
                                }
                                Ok((_, _)) | Err(_) => clean_errors += 1,
                            },
                            Err(_) => clean_errors += 1,
                        }
                        if done.load(Ordering::Acquire)
                            && follower.position() >= final_pos.load(Ordering::Acquire)
                        {
                            follower.shutdown();
                            break;
                        }
                        // Kill: arm a crash budget so the next applies
                        // die mid-transaction, then wait briefly for
                        // the sync loop to park (a caught-up follower
                        // may simply see no traffic — that makes this
                        // a clean restart, also a valid schedule).
                        let budget = rng.random_range(0..12);
                        fshared.cube().with_pool(|p| {
                            let mut s = p.store_mut();
                            if let Some(fs) = s.as_any_mut().downcast_mut::<FileStore>() {
                                fs.set_crash_after_ops(Some(budget));
                            }
                        });
                        let kill_t0 = std::time::Instant::now();
                        while !follower.is_dead()
                            && kill_t0.elapsed() < std::time::Duration::from_millis(300)
                        {
                            std::thread::sleep(std::time::Duration::from_millis(10));
                        }
                        follower.shutdown();
                        drop(fshared);
                    }
                    (restarts, reads_ok, clean_errors, replies, violations)
                })
            })
            .collect();

        // The leader's commit schedule: mutate a few cells, flush,
        // record the committed position and the serial reply at this
        // epoch, breathe, repeat.
        let mut lrng = StdRng::seed_from_u64(seed);
        let lens: Vec<u32> = leader_shared.cube().geometry().lens().to_vec();
        for _round in 0..ROUNDS {
            for _ in 0..3 {
                let coords: Vec<u32> = lens.iter().map(|&l| lrng.random_range(0..l)).collect();
                let v = lrng.random_range(0.0..1000.0);
                leader_shared
                    .cube()
                    .set(&coords, olap_store::CellValue::num(v))
                    .expect("leader cell write");
            }
            leader_shared.cube().flush().expect("leader flush");
            let pos = leader_shared.cube().with_pool(|p| {
                p.store()
                    .as_any()
                    .downcast_ref::<FileStore>()
                    .expect("file-backed")
                    .replication_position()
            });
            committed.lock().unwrap().push(pos);
            let mut s = Session::attach(leader_shared.clone());
            if let Outcome::Continue(text) = s.handle(READ) {
                oracle.lock().unwrap().push(text);
            }
            std::thread::sleep(std::time::Duration::from_millis(60));
        }
        let pos = leader_shared.cube().with_pool(|p| {
            p.store()
                .as_any()
                .downcast_ref::<FileStore>()
                .expect("file-backed")
                .replication_position()
        });
        final_pos.store(pos, Ordering::Release);
        done.store(true, Ordering::Release);

        let mut restarts = 0u32;
        let mut reads_ok = 0u32;
        let mut clean_errors = 0u32;
        let mut violations: Vec<String> = Vec::new();
        let mut all_replies: Vec<Vec<String>> = Vec::new();
        for w in workers {
            let (r, ok, errs, replies, v) = w.join().expect("follower thread panicked");
            restarts += r;
            reads_ok += ok;
            clean_errors += errs;
            violations.extend(v);
            all_replies.push(replies);
        }
        // Validate catch-up reads against the complete oracle.
        let oracle = oracle.lock().unwrap();
        for (i, replies) in all_replies.iter().enumerate() {
            for text in replies {
                if !oracle.contains(text) {
                    violations.push(format!(
                        "follower {i} served a reply matching no committed epoch: {text}"
                    ));
                }
            }
        }
        // Convergence: every follower file byte-identical to the
        // leader's.
        let leader_bytes = std::fs::read(&lpath).expect("read leader file");
        for (i, p) in fpaths.iter().enumerate() {
            let got = std::fs::read(p).expect("read follower file");
            if got != leader_bytes {
                violations.push(format!(
                    "follower {i} did not converge: {} bytes vs leader {}",
                    got.len(),
                    leader_bytes.len()
                ));
            }
        }
        let _ = leader_srv.shutdown();
        let elapsed = t0.elapsed();
        for v in &violations {
            eprintln!("seed {seed}: VIOLATION: {v}");
        }
        println!(
            "seed {seed}: {restarts} restarts across {followers} followers, {reads_ok} reads \
             matched an epoch, {clean_errors} clean errors, {} violations, {:.2} s",
            violations.len(),
            elapsed.as_secs_f64(),
        );
        if !violations.is_empty() || elapsed > ROUND_BUDGET {
            failed = true;
        }
        cleanup(&lpath);
        for p in &fpaths {
            cleanup(p);
        }
    }
    if failed {
        eprintln!("FAIL: replica-bench violated a gate (divergence, bad read, or over budget)");
        std::process::exit(1);
    }
    println!(
        "replica-bench: every follower converged byte-identically and every catch-up read \
         errored cleanly or matched a committed epoch\n"
    );
}

/// `--toggle-bench K`: the A/B-toggle gate for the versioned scenario
/// cache (DESIGN.md §14). An analyst alternating K scenarios must —
/// after one warm pass over each — replay every switch entirely from
/// cache: zero invalidations, ≥ 90% hit rate, zero merges, and cells
/// bit-identical to a cache-off baseline. Under the old
/// one-digest-per-chunk keying every switch destroyed the other
/// scenarios' entries, so this run re-merged K×rounds times. Exits
/// non-zero if any gate fails (CI-usable) and appends the counters to
/// `BENCH_pr7.json`.
fn run_toggle_bench(
    k: usize,
    cache_mb: usize,
    threads: usize,
    prefetch: usize,
    kernel: KernelKind,
) {
    const ROUNDS: usize = 4;
    let mb = if cache_mb > 0 { cache_mb } else { 64 };
    println!("=== toggle-bench — {k} alternating scenarios, {ROUNDS} rounds ===");
    let wf = Workforce::build(WorkforceConfig {
        employees: 400,
        departments: 12,
        changing: 80,
        employee_extent: 1,
        accounts: 4,
        scenarios: 2,
        ..WorkforceConfig::default()
    });
    if prefetch > 0 {
        wf.cube.start_io_threads(prefetch.min(4));
    }
    let strategy = Strategy::Chunked(OrderPolicy::Pebbling);
    // K distinct perspective sets from the replay catalogue (first 8 are
    // pairwise distinct; the arg parser caps K at 8).
    let scenarios: Vec<Scenario> = replay_scenarios(wf.department, Semantics::Static)
        .into_iter()
        .take(k)
        .map(|s| match s {
            Scenario::Negative(spec) => Scenario::negative(
                wf.department,
                spec.perspectives.iter().copied(),
                Semantics::Forward,
                Mode::Visual,
            ),
            positive => positive,
        })
        .collect();

    // Cache-off baseline: what "bit-identical" means, and the work a
    // thrashing cache would redo every switch.
    let off_opts = ExecOpts {
        threads,
        prefetch,
        cache: None,
        kernel,
        ..Default::default()
    };
    let off_t0 = std::time::Instant::now();
    let mut baselines = Vec::new();
    let (mut off_reads, mut off_merges) = (0u64, 0u64);
    for s in &scenarios {
        let r = apply_opts(&wf.cube, s, &strategy, None, off_opts.clone()).unwrap();
        off_reads += r.report.chunks_read;
        off_merges += r.report.merges;
        baselines.push(r.cube);
    }
    let off_ms = off_t0.elapsed().as_secs_f64() * 1e3;

    let cache = Arc::new(ScenarioCache::with_capacity_mb(mb));
    let opts = ExecOpts {
        threads,
        prefetch,
        cache: Some(cache.clone()),
        kernel,
        ..Default::default()
    };
    // Warmup: one pass over each scenario populates its versions.
    for s in &scenarios {
        apply_opts(&wf.cube, s, &strategy, None, opts.clone()).unwrap();
    }
    cache.reset_stats();

    // The toggle: ROUNDS passes alternating all K scenarios.
    let t0 = std::time::Instant::now();
    let (mut reads, mut merges, mut served) = (0u64, 0u64, 0u64);
    let mut mismatches = 0usize;
    for round in 0..ROUNDS {
        for (s, base) in scenarios.iter().zip(&baselines) {
            let r = apply_opts(&wf.cube, s, &strategy, None, opts.clone()).unwrap();
            reads += r.report.chunks_read;
            merges += r.report.merges;
            served += r.report.cache_chunks_served;
            if !r.cube.same_cells(base).unwrap() {
                mismatches += 1;
                eprintln!("round {round}: cells diverged from the cache-off baseline");
            }
        }
    }
    let toggle_ms = t0.elapsed().as_secs_f64() * 1e3;
    let stats = cache.stats();
    let hit_rate = if stats.lookups > 0 {
        100.0 * stats.hits as f64 / stats.lookups as f64
    } else {
        0.0
    };
    println!(
        "cache off : {off_ms:>8.2} ms/pass-set, {off_reads:>6} chunk reads, \
         {off_merges:>6} merges (×{ROUNDS} if toggled uncached)"
    );
    println!(
        "toggled   : {toggle_ms:>8.2} ms for {ROUNDS}×{k} switches, {reads:>6} chunk reads, \
         {merges:>6} merges, {served:>6} chunks served \
         (hit rate {hit_rate:.1}%, {} invalidations, {} evictions, {} KiB resident)",
        stats.invalidations,
        stats.evictions,
        stats.bytes / 1024,
    );
    write_bench_json(
        "BENCH_pr7.json",
        7,
        &[
            BenchRow {
                name: format!("toggle_k{k}_cache_off"),
                wall_ms: off_ms,
                chunk_reads: off_reads,
                merges: off_merges,
                cache: CacheStats::default(),
                prefetch: (0, 0, 0),
            },
            BenchRow {
                name: format!("toggle_k{k}_cache_on"),
                wall_ms: toggle_ms,
                chunk_reads: reads,
                merges,
                cache: stats,
                prefetch: (0, 0, 0),
            },
        ],
    );

    // The acceptance gates.
    let mut failed = false;
    if mismatches > 0 {
        eprintln!("FAIL: {mismatches} toggled run(s) were not bit-identical to cache-off");
        failed = true;
    }
    if stats.invalidations != 0 {
        eprintln!(
            "FAIL: {} invalidations after warmup (a scenario switch destroyed entries)",
            stats.invalidations
        );
        failed = true;
    }
    if hit_rate < 90.0 {
        eprintln!("FAIL: post-warmup hit rate {hit_rate:.1}% < 90%");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "all gates passed: bit-identical, 0 invalidations, {hit_rate:.1}% hits, \
         {merges} merges across {ROUNDS}×{k} switches\n"
    );
}

/// An order-independent digest of a cube's present cells (wrapping sum
/// of one FNV-1a hash per cell), so scalar and run-kernel outputs can be
/// compared bit-for-bit regardless of scan or merge interleaving.
fn cube_digest(cube: &olap_cube::Cube) -> (u64, u64) {
    let mut count = 0u64;
    let mut digest = 0u64;
    cube.for_each_present(|coords, v| {
        let mut h = Fnv64::new();
        for &c in coords {
            h.write_u32(c);
        }
        h.write_u64(v.to_bits());
        digest = digest.wrapping_add(h.finish());
        count += 1;
    })
    .expect("digest scan");
    (count, digest)
}

/// `--kernel-bench`: the run-kernel acceptance gate (DESIGN.md §15).
/// Times the merge-heavy ablation what-if under the scalar per-cell
/// oracle and the run kernels, checks the outputs are cell-identical
/// (order-independent digest), and appends both rows to
/// `BENCH_pr8.json`. Also runs the per-dimension rollup through the
/// aggregator to report the shared-gauge `concurrent peak` — the true
/// simultaneous buffer residency (with --threads >= 2 it is the figure
/// comparable to a serial run, unlike the summed per-worker peaks).
/// Exits non-zero on any divergence, so the gate is CI-usable.
fn run_kernel_bench(threads: usize, prefetch: usize) {
    use olap_cube::CubeAggregator;

    println!("=== kernel-bench — scalar oracle vs. run kernels ===");
    // A wide dense Account × Scenario cross-section (the run suffix once
    // the executor splits after max(vd, pd)) so the measured time is the
    // merge inner loop, not per-chunk bookkeeping: 256-cell runs inside
    // 12288-cell chunks at the default employee extent.
    let wf = Workforce::build(WorkforceConfig {
        employees: 400,
        departments: 12,
        changing: 120,
        accounts: 64,
        scenarios: 4,
        ..WorkforceConfig::default()
    });
    if prefetch > 0 {
        wf.cube.start_io_threads(prefetch.min(4));
    }
    let varying = wf.schema.varying(wf.department).unwrap();
    let vs_out = phi(Semantics::Forward, varying.instances(), &[0, 6], 12);
    let map = DestMap::build(&wf.cube, wf.department, &vs_out).unwrap();
    let policy = OrderPolicy::Pebbling;

    let mut rows: Vec<BenchRow> = Vec::new();
    let mut digests: Vec<(u64, u64)> = Vec::new();
    let mut walls = [0.0f64; 2];
    for (slot, kernel) in [(0usize, KernelKind::Scalar), (1, KernelKind::Runs)] {
        let opts = ExecOpts {
            threads,
            prefetch,
            cache: None,
            kernel,
            ..Default::default()
        };
        let t = min_time(ITERS, || {
            execute_chunked_scoped_opts(&wf.cube, wf.department, &map, &policy, None, opts.clone())
                .unwrap()
        });
        let (out, report) =
            execute_chunked_scoped_opts(&wf.cube, wf.department, &map, &policy, None, opts.clone())
                .unwrap();
        let (cells, digest) = cube_digest(&out);
        walls[slot] = t.as_secs_f64() * 1e3;
        println!(
            "{kernel:<6}: {:>8.2} ms, {:>6} chunk reads, {:>6} merges, \
             {cells} cells, digest {digest:016x}",
            walls[slot], report.chunks_read, report.merges,
        );
        digests.push((cells, digest));
        rows.push(BenchRow {
            name: format!("kernel_{kernel}"),
            wall_ms: walls[slot],
            chunk_reads: report.chunks_read,
            merges: report.merges,
            cache: CacheStats::default(),
            prefetch: (0, 0, 0),
        });
    }
    println!(
        "speedup: {:.2}× (scalar {:.2} ms → runs {:.2} ms)",
        walls[0] / walls[1],
        walls[0],
        walls[1],
    );

    // The aggregation scan is always run-based (no oracle switch); time
    // it and report the true concurrent buffer peak from the shared
    // gauge alongside the summed per-worker bound.
    let masks: Vec<olap_cube::GroupByMask> = (0..wf.cube.geometry().ndims() as u32)
        .map(|d| 1 << d)
        .collect();
    let agg_t = min_time(ITERS, || {
        CubeAggregator::new(&wf.cube)
            .with_threads(threads)
            .compute(&masks)
            .unwrap()
    });
    let (_, agg_report) = CubeAggregator::new(&wf.cube)
        .with_threads(threads)
        .compute(&masks)
        .unwrap();
    println!(
        "rollup ({} group-bys, {} thread(s)): {:.2} ms, peak {} buffer cells \
         (true concurrent peak {})",
        masks.len(),
        threads,
        agg_t.as_secs_f64() * 1e3,
        agg_report.peak_buffer_cells,
        agg_report.concurrent_peak_cells,
    );

    write_bench_json("BENCH_pr8.json", 8, &rows);
    if digests[0] != digests[1] {
        eprintln!(
            "FAIL: run kernels diverged from the scalar oracle \
             (scalar {:?}, runs {:?})",
            digests[0], digests[1]
        );
        std::process::exit(1);
    }
    println!("kernels bit-identical to the scalar oracle\n");
}
