//! Workload setup shared by the Criterion benches and the `repro` binary.

use olap_mdx::{execute, Grid, QueryContext};
use olap_model::MemberId;
use olap_store::{ChunkId, SeekModel};
use olap_workload::{Workforce, WorkforceConfig, MONTHS};

pub use olap_workload::workforce::MONTHS as MONTH_NAMES;

/// Builds the default-scale workforce (1/10th of the paper's).
pub fn default_workforce() -> Workforce {
    Workforce::build(WorkforceConfig::default())
}

/// The Fig. 13 workload: every changer has exactly 4 moves, so
/// `EmployeesWithAtleastOneMove-Set1` is a pool of 4-move employees.
pub fn fig13_workforce(pool: u32) -> Workforce {
    let changing = pool * 3; // Set1 is a third of the changers
    Workforce::build(WorkforceConfig {
        changing,
        four_move_quota: changing,
        ..WorkforceConfig::default()
    })
}

/// A query context with the workload's named sets registered.
pub fn context(wf: &Workforce) -> QueryContext<'_> {
    let mut ctx = QueryContext::new(&wf.cube);
    for (name, members) in wf.named_sets() {
        ctx.define_set(&name, wf.department, &members);
    }
    ctx
}

/// Runs one query, panicking on error (benches fail loudly).
pub fn run(ctx: &QueryContext<'_>, query: &str) -> Grid {
    execute(ctx, query).unwrap_or_else(|e| panic!("query failed: {e}\n{query}"))
}

/// The first `k` month names, the Fig. 11 perspective sweep.
pub fn first_months(k: usize) -> Vec<&'static str> {
    MONTHS[..k].to_vec()
}

/// Quarterly perspectives {Jan, Apr, Jul, Oct} (Figs. 10(b), 10(c), 13).
pub fn quarterly() -> Vec<&'static str> {
    vec!["Jan", "Apr", "Jul", "Oct"]
}

/// The Fig. 12 experiment rig: a file-backed workforce cube with
/// per-instance chunks (employee extent 1) and a simulated disk, whose
/// physical layout can be reorganized to place a chosen number of
/// unrelated chunks between the two instances of `EmployeeS3`.
pub struct Fig12Rig {
    /// The workload (file-backed cube).
    pub wf: Workforce,
    /// The two-instance employee under test.
    pub employee: MemberId,
    /// Chunks holding the employee's first instance.
    pub chunks_a: Vec<ChunkId>,
    /// Chunks holding the second instance.
    pub chunks_b: Vec<ChunkId>,
    /// Everything else (padding material).
    pub other_chunks: Vec<ChunkId>,
    path: std::path::PathBuf,
}

impl Fig12Rig {
    /// Builds the rig in a temp file.
    pub fn build() -> Fig12Rig {
        let path = std::env::temp_dir().join(format!(
            "perspective-olap-fig12-{}.cube",
            std::process::id()
        ));
        let wf = Workforce::build(WorkforceConfig {
            employee_extent: 1, // one instance per chunk column
            backend: olap_cube::StoreBackend::File(path.clone()),
            ..WorkforceConfig::default()
        });
        // EmployeeS3: the designated two-instance employee.
        let employee = wf
            .movers_with_moves(1)
            .first()
            .copied()
            .expect("a 1-move employee exists in the default cycle");
        let varying = wf.schema.varying(wf.department).expect("varying");
        let insts = varying.instances_of(employee).to_vec();
        assert_eq!(insts.len(), 2, "EmployeeS3 must have exactly two instances");
        let geom = wf.cube.geometry().clone();
        let vd = wf.department.index();
        let mut chunks_a = Vec::new();
        let mut chunks_b = Vec::new();
        let mut other = Vec::new();
        for id in wf.cube.chunk_ids() {
            let coord = geom.chunk_coord(id);
            if coord[vd] == insts[0].0 {
                chunks_a.push(id);
            } else if coord[vd] == insts[1].0 {
                chunks_b.push(id);
            } else {
                other.push(id);
            }
        }
        assert!(!chunks_a.is_empty() && !chunks_b.is_empty());
        Fig12Rig {
            wf,
            employee,
            chunks_a,
            chunks_b,
            other_chunks: other,
            path,
        }
    }

    /// Reorganizes the store so `padding` unrelated chunks sit between
    /// the two instances' chunk runs, and installs the seek model.
    pub fn set_separation(&self, padding: usize, seek: SeekModel) {
        let padding = padding.min(self.other_chunks.len());
        let mut order: Vec<ChunkId> = Vec::new();
        order.extend(&self.chunks_a);
        order.extend(&self.other_chunks[..padding]);
        order.extend(&self.chunks_b);
        order.extend(&self.other_chunks[padding..]);
        self.wf.cube.with_pool(|pool| {
            pool.flush_all().expect("flush");
        });
        // Reach through the pool to the FileStore.
        self.wf.cube.with_pool(|pool| {
            let mut guard = pool.store_mut();
            let store = guard
                .as_any_mut()
                .downcast_mut::<olap_store::FileStore>()
                .expect("fig12 rig uses a FileStore");
            store.reorganize(&order).expect("reorganize");
            store.set_seek_model(Some(seek));
        });
    }

    /// Byte separation between the two instances' first chunks.
    pub fn separation_bytes(&self) -> u64 {
        self.wf.cube.with_pool(|pool| {
            let guard = pool.store();
            let store = guard
                .as_any()
                .downcast_ref::<olap_store::FileStore>()
                .expect("fig12 rig uses a FileStore");
            store
                .separation(self.chunks_a[0], self.chunks_b[0])
                .unwrap_or(0)
        })
    }

    /// Runs the Fig. 12 query once: a quarterly dynamic-forward
    /// perspective over EmployeeS3, executed scoped to that employee's
    /// instances (Essbase-style retrieval — only the employee's chunks
    /// and their merge partners are read from disk). The buffer pool is
    /// cleared first so every run pays real (simulated-seek) I/O.
    pub fn run_query(&self) -> whatif_core::ExecReport {
        self.run_query_with(0)
    }

    /// [`Self::run_query`] with a prefetch lookahead of `prefetch` chunks
    /// (0 = no hints). Starts the pool's I/O workers on first use.
    pub fn run_query_with(&self, prefetch: usize) -> whatif_core::ExecReport {
        if prefetch > 0 {
            self.wf.cube.start_io_threads(prefetch.min(4));
        }
        self.wf.cube.with_pool(|pool| {
            // Let stragglers from the previous run land before clearing,
            // so each run starts from a cold, stable pool.
            pool.wait_prefetch_idle();
            pool.clear().expect("no pins")
        });
        let varying = self.wf.schema.varying(self.wf.department).expect("varying");
        let p: Vec<u32> = [0u32, 3, 6, 9]
            .iter()
            .copied()
            .filter(|&t| t < self.wf.config.months)
            .collect();
        let vs_out = whatif_core::phi(
            whatif_core::Semantics::Forward,
            varying.instances(),
            &p,
            varying.moments(),
        );
        let map =
            whatif_core::DestMap::build(&self.wf.cube, self.wf.department, &vs_out).expect("plan");
        let slots: Vec<u32> = varying
            .instances_of(self.employee)
            .iter()
            .map(|i| i.0)
            .collect();
        let (_, report) = whatif_core::execute_chunked_scoped_opts(
            &self.wf.cube,
            self.wf.department,
            &map,
            &whatif_core::OrderPolicy::Pebbling,
            Some(&slots),
            whatif_core::ExecOpts {
                threads: 1,
                prefetch,
                cache: None,
                ..Default::default()
            },
        )
        .expect("scoped execution");
        report
    }
}

impl Drop for Fig12Rig {
    fn drop(&mut self) {
        std::fs::remove_file(&self.path).ok();
    }
}
