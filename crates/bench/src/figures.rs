//! Figure data: named series over a swept parameter, rendered as the
//! tables the paper's plots are drawn from.

use std::fmt;

/// One line of a figure.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label (e.g. "Static", "Dynamic Forward", "Multiple MDX").
    pub name: String,
    /// (x, y) points.
    pub points: Vec<(f64, f64)>,
}

/// One reproduced figure.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Paper figure id ("Fig. 11").
    pub id: String,
    /// Title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The series.
    pub series: Vec<Series>,
    /// What shape the paper reports (printed alongside for comparison).
    pub paper_expectation: String,
}

impl Figure {
    /// CSV rendering (x, then one column per series).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.x_label.replace(' ', "_"));
        for s in &self.series {
            out.push(',');
            out.push_str(&s.name.replace(' ', "_"));
        }
        out.push('\n');
        let xs: Vec<f64> = self
            .series
            .first()
            .map(|s| s.points.iter().map(|&(x, _)| x).collect())
            .unwrap_or_default();
        for (i, x) in xs.iter().enumerate() {
            out.push_str(&format!("{x}"));
            for s in &self.series {
                out.push(',');
                match s.points.get(i) {
                    Some(&(_, y)) => out.push_str(&format!("{y:.3}")),
                    None => out.push_str("NA"),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Least-squares slope of a series — used to check the paper's
    /// "scales linearly" claims.
    pub fn linearity_r2(points: &[(f64, f64)]) -> f64 {
        let n = points.len() as f64;
        if points.len() < 3 {
            return 1.0;
        }
        let mx = points.iter().map(|p| p.0).sum::<f64>() / n;
        let my = points.iter().map(|p| p.1).sum::<f64>() / n;
        let sxy: f64 = points.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
        let sxx: f64 = points.iter().map(|p| (p.0 - mx) * (p.0 - mx)).sum();
        let syy: f64 = points.iter().map(|p| (p.1 - my) * (p.1 - my)).sum();
        if sxx == 0.0 || syy == 0.0 {
            return 1.0;
        }
        (sxy * sxy) / (sxx * syy)
    }
}

impl fmt::Display for Figure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== {} — {} ===", self.id, self.title)?;
        writeln!(f, "paper: {}", self.paper_expectation)?;
        let w = self
            .series
            .iter()
            .map(|s| s.name.len())
            .max()
            .unwrap_or(8)
            .max(8);
        write!(f, "{:>w$}", self.x_label)?;
        for s in &self.series {
            write!(f, "  {:>12}", s.name)?;
        }
        writeln!(f)?;
        let xs: Vec<f64> = self
            .series
            .first()
            .map(|s| s.points.iter().map(|&(x, _)| x).collect())
            .unwrap_or_default();
        for (i, x) in xs.iter().enumerate() {
            write!(f, "{:>w$}", format!("{x}"))?;
            for s in &self.series {
                match s.points.get(i) {
                    Some(&(_, y)) => write!(f, "  {:>12.3}", y)?,
                    None => write!(f, "  {:>12}", "NA")?,
                }
            }
            writeln!(f)?;
        }
        writeln!(f, "(y-axis: {})", self.y_label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> Figure {
        Figure {
            id: "Fig. T".into(),
            title: "test".into(),
            x_label: "n".into(),
            y_label: "ms".into(),
            series: vec![
                Series {
                    name: "A".into(),
                    points: vec![(1.0, 2.0), (2.0, 4.0), (3.0, 6.0)],
                },
                Series {
                    name: "B".into(),
                    points: vec![(1.0, 1.0), (2.0, 1.5), (3.0, 9.0)],
                },
            ],
            paper_expectation: "linear".into(),
        }
    }

    #[test]
    fn csv_has_all_columns() {
        let csv = fig().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "n,A,B");
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with("1,2.000,1.000"));
    }

    #[test]
    fn perfectly_linear_r2_is_one() {
        let f = fig();
        let r2 = Figure::linearity_r2(&f.series[0].points);
        assert!((r2 - 1.0).abs() < 1e-12);
        let r2b = Figure::linearity_r2(&f.series[1].points);
        assert!(r2b < 1.0);
    }

    #[test]
    fn display_mentions_paper_expectation() {
        let s = fig().to_string();
        assert!(s.contains("paper: linear"));
        assert!(s.contains("Fig. T"));
    }
}
