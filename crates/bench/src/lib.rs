//! Benchmark & reproduction harness.
//!
//! One module per concern: [`figures`] renders series the way the paper's
//! plots report them, [`baselines`] implements the paper's "Multiple MDX"
//! simulation baseline, and [`setup`] builds the workloads each
//! experiment needs. The `repro` binary and the Criterion benches are
//! thin wrappers over these.

pub mod baselines;
pub mod figures;
pub mod setup;

use std::time::{Duration, Instant};

/// Times `f`, returning the minimum over `iters` runs (minimum is the
/// standard noise-robust statistic for CPU-bound work).
pub fn min_time<T>(iters: u32, mut f: impl FnMut() -> T) -> Duration {
    assert!(iters > 0);
    let mut best = Duration::MAX;
    for _ in 0..iters {
        let start = Instant::now();
        let out = f();
        let el = start.elapsed();
        std::hint::black_box(out);
        if el < best {
            best = el;
        }
    }
    best
}
