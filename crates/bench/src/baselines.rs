//! The paper's comparison baseline for Fig. 11: "the upper bound of
//! execution time for a multi-perspective query can be obtained by
//! simulating it via a series of single perspective queries and
//! post-processing individual query results into a single result set
//! (line 'Multiple MDX')."

use olap_mdx::{Grid, QueryContext};
use olap_store::CellValue;
use olap_workload::Workforce;

/// Simulates a k-perspective **static** query as k single-perspective
/// queries whose grids are merged (union of rows; per-cell, the first
/// non-⊥ value wins — static validity sets are disjoint across
/// perspectives for a changing member's instances, so this is exact).
pub fn multiple_mdx(ctx: &QueryContext<'_>, wf: &Workforce, perspectives: &[&str]) -> Grid {
    assert!(!perspectives.is_empty());
    let mut merged: Option<Grid> = None;
    for p in perspectives {
        let q = wf.fig10a_query(&[p]);
        let g = olap_mdx::execute(ctx, &q).expect("single-perspective query");
        merged = Some(match merged {
            None => g,
            Some(acc) => merge(acc, g),
        });
    }
    merged.expect("at least one perspective")
}

/// Post-processing step: merges two grids over the same columns.
pub fn merge(mut acc: Grid, other: Grid) -> Grid {
    assert_eq!(acc.columns, other.columns, "mismatched column axes");
    for (i, row) in other.rows.iter().enumerate() {
        match acc.rows.iter().position(|r| r == row) {
            Some(j) => {
                for c in 0..acc.columns.len() {
                    if acc.cells[j][c].is_null() && !other.cells[i][c].is_null() {
                        acc.cells[j][c] = other.cells[i][c];
                    }
                }
            }
            None => {
                acc.rows.push(row.clone());
                acc.cells.push(other.cells[i].clone());
                acc.row_properties
                    .push(other.row_properties.get(i).cloned().unwrap_or_default());
            }
        }
    }
    acc
}

/// Checks a merged grid covers everything a direct multi-perspective
/// grid covers (used by the correctness test backing the baseline).
pub fn covers(direct: &Grid, merged: &Grid) -> bool {
    for (i, row) in direct.rows.iter().enumerate() {
        for (c, col) in direct.columns.iter().enumerate() {
            let d = direct.cells[i][c];
            if d.is_null() {
                continue;
            }
            match merged.cell(row, col) {
                Some(CellValue::Num(x)) if CellValue::Num(x) == d => {}
                _ => return false,
            }
        }
    }
    true
}
