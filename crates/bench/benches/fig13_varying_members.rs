//! Fig. 13 — number of varying member instances in scope vs. query time.
//!
//! The paper runs a static 4-perspective query over 50–250 employees
//! with 4 reporting-structure changes each (step 50) and observes linear
//! scaling. At our 1/10th scale the sweep is 5–25 employees (step 5),
//! using the Fig. 10(c) query's `Head(…, n)`.

use bench::setup::{context, fig13_workforce, quarterly, run};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn fig13(c: &mut Criterion) {
    let wf = fig13_workforce(25);
    let ctx = context(&wf);
    let p = quarterly();
    let mut group = c.benchmark_group("fig13_varying_members");
    group.sample_size(10);
    for &n in &[5u32, 10, 15, 20, 25] {
        let q = wf.fig10c_query(&p, n);
        group.bench_with_input(BenchmarkId::new("employees", n), &q, |b, q| {
            b.iter(|| run(&ctx, q))
        });
    }
    group.finish();
}

criterion_group!(benches, fig13);
criterion_main!(benches);
