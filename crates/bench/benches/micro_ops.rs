//! Micro-benchmarks of the core building blocks: Φ, relocate plans, the
//! pebbling heuristic, the chunk codec, and selection.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use olap_store::{codec, CellValue, Chunk};
use olap_workload::{Workforce, WorkforceConfig};
use whatif_core::{
    merge::{heuristic_order, pebbles_for_order, MergeGraph},
    phi, DestMap, Predicate, Semantics,
};

fn micro(c: &mut Criterion) {
    let wf = Workforce::build(WorkforceConfig::default());
    let varying = wf.schema.varying(wf.department).unwrap();

    c.bench_function("phi_forward_2k_instances", |b| {
        b.iter(|| phi(Semantics::Forward, varying.instances(), &[0, 3, 6, 9], 12))
    });

    let vs_out = phi(Semantics::Forward, varying.instances(), &[0, 3, 6, 9], 12);
    c.bench_function("destmap_build_2k_instances", |b| {
        b.iter(|| DestMap::build(&wf.cube, wf.department, &vs_out).unwrap())
    });

    c.bench_function("select_changing_members", |b| {
        b.iter(|| {
            whatif_core::operators::select::matching_slots(
                &wf.cube,
                wf.department,
                &Predicate::Changing,
            )
            .unwrap()
        })
    });

    // Pebbling on pseudo-random graphs of growing size.
    let mut group = c.benchmark_group("pebbling_heuristic");
    for &n in &[16u32, 64, 256] {
        let mut edges = Vec::new();
        let mut x = 0x243F_6A88_85A3_08D3u64;
        for a in 0..n {
            for b in (a + 1)..n {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                if x % (n as u64) < 3 {
                    edges.push((a, b));
                }
            }
        }
        let labels: Vec<u32> = (0..n).collect();
        let g = MergeGraph::from_edges(&labels, &edges);
        group.bench_with_input(BenchmarkId::new("nodes", n), &g, |b, g| {
            b.iter(|| {
                let order = heuristic_order(g);
                pebbles_for_order(g, &order)
            })
        });
    }
    group.finish();

    // Codec roundtrip on a half-full chunk.
    let mut chunk = Chunk::new_dense(vec![16, 16]);
    for i in (0..256).step_by(2) {
        chunk.set(i, CellValue::num(i as f64));
    }
    c.bench_function("codec_roundtrip_256cell_chunk", |b| {
        b.iter(|| codec::decode(&codec::encode(&chunk).unwrap()).unwrap())
    });
}

criterion_group!(benches, micro);
criterion_main!(benches);
