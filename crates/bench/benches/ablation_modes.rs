//! Ablation — visual vs. non-visual mode: visual re-derives non-leaf
//! cells over the output cube, non-visual retains the input's.

use bench::setup::{context, default_workforce, first_months, run};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn modes(c: &mut Criterion) {
    let wf = default_workforce();
    let ctx = context(&wf);
    let months = first_months(4);
    let mut group = c.benchmark_group("ablation_modes");
    group.sample_size(10);
    for mode in ["NONVISUAL", "VISUAL"] {
        let q = wf.fig10a_query_sem(&months, &format!("DYNAMIC FORWARD {mode}"));
        group.bench_with_input(BenchmarkId::new("mode", mode), &q, |b, q| {
            b.iter(|| run(&ctx, q))
        });
    }
    group.finish();
}

criterion_group!(benches, modes);
criterion_main!(benches);
