//! Ablation — Lemma 5.1: reading chunks with the varying dimension first
//! needs less buffer memory than any order where it is not first.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use olap_workload::{Workforce, WorkforceConfig};
use whatif_core::{execute_chunked, phi, DestMap, OrderPolicy, Semantics};

fn dimorder(c: &mut Criterion) {
    let wf = Workforce::build(WorkforceConfig {
        employees: 400,
        departments: 12,
        changing: 60,
        employee_extent: 4,
        accounts: 4,
        scenarios: 2,
        ..WorkforceConfig::default()
    });
    let varying = wf.schema.varying(wf.department).unwrap();
    let vs_out = phi(Semantics::Forward, varying.instances(), &[0], 12);
    let map = DestMap::build(&wf.cube, wf.department, &vs_out).unwrap();
    // Dimension order: [Period, Department, Account, Scenario, …] in the
    // schema. Department (index 1) is the varying dimension.
    let vd_first = OrderPolicy::Naive; // varying-dim-first slices
    let param_first = OrderPolicy::DimOrder(vec![0, 2, 3, 4, 5, 6, 1]);
    for (name, policy) in [("vd_first", &vd_first), ("param_first", &param_first)] {
        let (_, report) = execute_chunked(&wf.cube, wf.department, &map, policy).unwrap();
        eprintln!(
            "ablation_dimorder[{name}]: peak buffers {} (graph {} nodes)",
            report.peak_out_buffers, report.graph_nodes
        );
    }
    let mut group = c.benchmark_group("ablation_dimorder");
    group.sample_size(10);
    for (name, policy) in [("vd_first", vd_first), ("param_first", param_first)] {
        group.bench_with_input(BenchmarkId::new("order", name), &policy, |b, p| {
            b.iter(|| execute_chunked(&wf.cube, wf.department, &map, p).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, dimorder);
criterion_main!(benches);
