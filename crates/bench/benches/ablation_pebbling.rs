//! Ablation — Section 5.2's pebbling heuristic vs. the naive layout
//! order: peak resident chunks and wall time for the same relocation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use olap_workload::{Workforce, WorkforceConfig};
use whatif_core::{execute_chunked, merge, phi, DestMap, OrderPolicy, Semantics};

fn setup() -> (Workforce, DestMap) {
    // Dense merge graphs: every changer moves a lot, one instance per
    // chunk so moves always cross chunks.
    let wf = Workforce::build(WorkforceConfig {
        employees: 400,
        departments: 12,
        changing: 120,
        employee_extent: 1,
        accounts: 4,
        scenarios: 2,
        ..WorkforceConfig::default()
    });
    let varying = wf.schema.varying(wf.department).unwrap();
    let vs_out = phi(Semantics::Forward, varying.instances(), &[0, 6], 12);
    let map = DestMap::build(&wf.cube, wf.department, &vs_out).unwrap();
    (wf, map)
}

fn pebbling(c: &mut Criterion) {
    let (wf, map) = setup();
    // Report the memory ablation once (Criterion measures only time).
    for (name, policy) in [
        ("pebbling", OrderPolicy::Pebbling),
        ("naive", OrderPolicy::Naive),
    ] {
        let (_, report) = execute_chunked(&wf.cube, wf.department, &map, &policy).unwrap();
        eprintln!(
            "ablation_pebbling[{name}]: graph {} nodes / {} edges, \
             predicted pebbles {}, peak buffers {}",
            report.graph_nodes,
            report.graph_edges,
            report.predicted_pebbles,
            report.peak_out_buffers
        );
    }
    // And the paper's own Fig. 9 worked example.
    let g = merge::MergeGraph::fig9();
    eprintln!(
        "fig9 graph: heuristic {} pebbles, naive {} pebbles, optimal {}",
        merge::pebbles_for_order(&g, &merge::heuristic_order(&g)),
        merge::pebbles_for_order(&g, &merge::naive_order(&g)),
        merge::optimal_pebbles(&g),
    );

    let mut group = c.benchmark_group("ablation_pebbling");
    group.sample_size(10);
    for (name, policy) in [
        ("pebbling", OrderPolicy::Pebbling),
        ("naive", OrderPolicy::Naive),
    ] {
        group.bench_with_input(BenchmarkId::new("policy", name), &policy, |b, p| {
            b.iter(|| execute_chunked(&wf.cube, wf.department, &map, p).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, pebbling);
criterion_main!(benches);
