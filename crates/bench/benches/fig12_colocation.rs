//! Fig. 12 — physical co-location of related chunks vs. query time.
//!
//! The paper separates the two instances of one employee by multiples of
//! a base chunk count (719,928 chunks ≈ 1.5 GB on their cube), runs a
//! dynamic-forward query over that employee, and observes: elapsed time
//! rises with separation, then flattens once disk seek time saturates.
//! Here the separation is set by reorganizing the file store and the seek
//! cost comes from the [`olap_store::SeekModel`] (see DESIGN.md §2).

use bench::setup::Fig12Rig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use olap_store::SeekModel;

fn fig12(c: &mut Criterion) {
    let rig = Fig12Rig::build();
    let base = (rig.other_chunks.len() / 6).max(10);
    // Calibrate the seek model so saturation lands between ×2 and ×3 of
    // the base separation, like the paper's full-stroke plateau.
    rig.set_separation(base, SeekModel::default_disk());
    let base_bytes = rig.separation_bytes().max(1);
    // Saturates at 2.5× the base separation — the "full stroke".
    let seek = SeekModel {
        ns_per_byte: 2_000_000.0 / (2.5 * base_bytes as f64),
        max_ns: 2_000_000,
    };
    let mut group = c.benchmark_group("fig12_colocation");
    group.sample_size(10);
    for multiple in 1..=5usize {
        rig.set_separation(base * multiple, seek);
        group.bench_with_input(
            BenchmarkId::new("separation_multiple", multiple),
            &multiple,
            |b, _| b.iter(|| rig.run_query()),
        );
    }
    group.finish();
}

criterion_group!(benches, fig12);
criterion_main!(benches);
