//! Baseline — what-if via Type-2 slowly-changing dimensions (paper
//! Section 7): the Type-2 user must re-implement forward semantics
//! client-side over an effective-date side table and re-scan the cube
//! cell by cell; the native perspective engine works chunk-at-a-time with
//! scoping, merge ordering, and pass decomposition.

use criterion::{criterion_group, criterion_main, Criterion};
use olap_workload::{simulate_forward, type2_of, Workforce, WorkforceConfig};
use whatif_core::{apply_default, Mode, Scenario, Semantics};

fn type2_baseline(c: &mut Criterion) {
    let wf = Workforce::build(WorkforceConfig::default());
    eprintln!("converting to Type-2 (one-time)…");
    let t2 = type2_of(&wf.cube, wf.department);
    let p = vec![0u32, 3, 6, 9];
    // Slice: acc000 at (Current, Local, BU Version_1, HSP_InputValue).
    // Dimension order: Period, Department, Account, Scenario, Currency,
    // Version, HSP_Rates.
    let slicer = vec![None, None, Some(0u32), Some(0), Some(0), Some(0), Some(0)];

    let mut group = c.benchmark_group("baseline_type2");
    group.sample_size(10);
    group.bench_function("native_perspective", |b| {
        b.iter(|| {
            let scenario =
                Scenario::negative(wf.department, p.clone(), Semantics::Forward, Mode::Visual);
            apply_default(&wf.cube, &scenario).unwrap()
        })
    });
    group.bench_function("type2_client_simulation", |b| {
        b.iter(|| simulate_forward(&t2, &p, &slicer))
    });
    group.finish();
}

criterion_group!(benches, type2_baseline);
criterion_main!(benches);
