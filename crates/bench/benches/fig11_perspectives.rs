//! Fig. 11 — number of perspectives vs. query time.
//!
//! The paper sweeps 1–12 perspectives over "all employees who reported
//! into more than one department" and compares three strategies: the
//! direct multi-perspective STATIC query, DYNAMIC FORWARD, and the
//! "Multiple MDX" simulation baseline (k single-perspective queries plus
//! post-processing). All three scale linearly; direct beats simulation;
//! static ≈ forward beyond ~6 perspectives.

use bench::baselines::multiple_mdx;
use bench::setup::{context, default_workforce, first_months, run};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn fig11(c: &mut Criterion) {
    let wf = default_workforce();
    let ctx = context(&wf);
    let mut group = c.benchmark_group("fig11_perspectives");
    group.sample_size(10);
    for &k in &[1usize, 2, 4, 6, 8, 10, 12] {
        let months = first_months(k);
        let static_q = wf.fig10a_query(&months);
        group.bench_with_input(BenchmarkId::new("static", k), &static_q, |b, q| {
            b.iter(|| run(&ctx, q))
        });
        let fwd_q = wf.fig10a_query_sem(&months, "DYNAMIC FORWARD");
        group.bench_with_input(BenchmarkId::new("dynamic_forward", k), &fwd_q, |b, q| {
            b.iter(|| run(&ctx, q))
        });
        group.bench_with_input(BenchmarkId::new("multiple_mdx", k), &months, |b, m| {
            b.iter(|| multiple_mdx(&ctx, &wf, m))
        });
    }
    group.finish();
}

criterion_group!(benches, fig11);
criterion_main!(benches);
