//! Member arena nodes.

use crate::ids::MemberId;

/// One member of a dimension hierarchy.
///
/// Members live in their dimension's arena (`Vec<MemberNode>`); tree links
/// are arena indices. The static hierarchy recorded here is the member's
/// *original* classification; reclassifications of varying dimensions are
/// layered on top by [`crate::VaryingDimension`] without mutating these
/// nodes, so the un-changed structure is always recoverable (needed by
/// negative scenarios, which hypothetically undo changes).
#[derive(Debug, Clone)]
pub struct MemberNode {
    /// Display name, unique among siblings.
    pub name: String,
    /// Parent in the static hierarchy; `None` only for the root.
    pub parent: Option<MemberId>,
    /// Children in insertion order.
    pub children: Vec<MemberId>,
    /// Depth from the root (root = 0).
    pub level: u32,
}

impl MemberNode {
    pub(crate) fn root(name: &str) -> Self {
        MemberNode {
            name: name.to_string(),
            parent: None,
            children: Vec::new(),
            level: 0,
        }
    }

    pub(crate) fn child(name: &str, parent: MemberId, level: u32) -> Self {
        MemberNode {
            name: name.to_string(),
            parent: Some(parent),
            children: Vec::new(),
            level,
        }
    }

    /// A member with no children is a leaf.
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }
}
