//! Varying dimensions: reclassification timelines and member instances.
//!
//! A *varying dimension* (Definition 2.1) is a dimension whose hierarchy
//! changes as a function of a *parameter dimension*. We record the change
//! history as per-member **timelines**: for every moment `t` of the
//! parameter dimension, which parent the member reports to (or `None` when
//! the member has no valid classification at `t`, like Joe's May vacation
//! in the paper's Fig. 2).
//!
//! From the timelines we derive **member instances** (Definition 3.1): each
//! distinct root-to-leaf path of a leaf member becomes one instance, with a
//! validity set `VS(dᵢ)` collecting exactly the moments where that path is
//! in effect. Re-acquiring an earlier parent re-uses the earlier instance —
//! the paper's "the root-to-leaf path of this new instance of d is
//! identical to that of d1, so it is treated as d1".
//!
//! Instances of a varying dimension — not its leaf members — form the
//! dimension's cube axis, mirroring how Fig. 2 shows one row per instance
//! (`FTE/Joe`, `PTE/Joe`, `Contractor/Joe`).

use crate::dimension::Dimension;
use crate::error::ModelError;
use crate::ids::{DimensionId, InstanceId, MemberId, Moment};
use crate::validity::ValiditySet;
use crate::Result;
use std::collections::HashMap;

/// One member instance: a leaf member together with one root-to-leaf path.
#[derive(Debug, Clone)]
pub struct InstanceNode {
    /// The leaf member this is an instance of.
    pub member: MemberId,
    /// Ancestor chain below the root, top-down, ending at the direct
    /// parent. `["FTE"]` for instance `FTE/Joe`; deeper hierarchies list
    /// every intermediate member.
    pub path: Vec<MemberId>,
    /// Moments at which this instance is the valid classification.
    pub validity: ValiditySet,
}

impl InstanceNode {
    /// The direct parent member of the instance.
    pub fn parent(&self) -> MemberId {
        *self.path.last().expect("instance path never empty")
    }
}

/// Change metadata for one varying dimension.
///
/// Mutators mark the instance table dirty; call
/// [`VaryingDimension::rebuild`] (or [`crate::Schema::seal`]) before
/// reading instances.
#[derive(Debug, Clone)]
pub struct VaryingDimension {
    varying: DimensionId,
    parameter: DimensionId,
    /// Leaf count of the parameter dimension, fixed at registration.
    moments: u32,
    /// Per-member explicit timelines; members without an entry follow
    /// their static parent at every moment.
    timelines: HashMap<MemberId, Vec<Option<MemberId>>>,
    instances: Vec<InstanceNode>,
    by_member: HashMap<MemberId, Vec<InstanceId>>,
    dirty: bool,
}

impl VaryingDimension {
    /// Low-level constructor; prefer [`crate::Schema::make_varying`],
    /// which wires the registry and sizes `moments` from the parameter
    /// dimension automatically.
    pub fn new(varying: DimensionId, parameter: DimensionId, moments: u32) -> Self {
        VaryingDimension {
            varying,
            parameter,
            moments,
            timelines: HashMap::new(),
            instances: Vec::new(),
            by_member: HashMap::new(),
            dirty: true,
        }
    }

    /// The dimension whose structure changes.
    pub fn varying_dim(&self) -> DimensionId {
        self.varying
    }

    /// The dimension driving the changes.
    pub fn parameter_dim(&self) -> DimensionId {
        self.parameter
    }

    /// Number of moments (parameter-dimension leaves).
    pub fn moments(&self) -> u32 {
        self.moments
    }

    fn check_moment(&self, t: Moment) -> Result<()> {
        if t >= self.moments {
            return Err(ModelError::MomentOutOfRange {
                moment: t,
                len: self.moments,
            });
        }
        Ok(())
    }

    fn timeline_mut(&mut self, dim: &Dimension, member: MemberId) -> &mut Vec<Option<MemberId>> {
        let moments = self.moments as usize;
        self.timelines.entry(member).or_insert_with(|| {
            let static_parent = dim.parent(member);
            vec![static_parent; moments]
        })
    }

    /// A *legal structural change* (Definition 3.1): from moment `t`
    /// onward, `member` reports to `new_parent` (until any later change).
    ///
    /// `new_parent` must be a non-leaf member and must not be `member`
    /// itself or one of its descendants.
    pub fn reclassify(
        &mut self,
        dim: &Dimension,
        member: MemberId,
        new_parent: MemberId,
        t: Moment,
    ) -> Result<()> {
        self.check_moment(t)?;
        self.check_parent(dim, member, new_parent)?;
        let tl = self.timeline_mut(dim, member);
        for slot in tl.iter_mut().skip(t as usize) {
            *slot = Some(new_parent);
        }
        self.dirty = true;
        Ok(())
    }

    /// Assigns `member`'s parent at an explicit set of moments — the
    /// unordered-parameter form (e.g. "Joe is a child of FTE in
    /// {NY, MA, CA} and of PTE elsewhere").
    pub fn set_parent_at(
        &mut self,
        dim: &Dimension,
        member: MemberId,
        parent: MemberId,
        at: impl IntoIterator<Item = Moment>,
    ) -> Result<()> {
        self.check_parent(dim, member, parent)?;
        let moments = self.moments;
        let tl = self.timeline_mut(dim, member);
        for t in at {
            if t >= moments {
                return Err(ModelError::MomentOutOfRange {
                    moment: t,
                    len: moments,
                });
            }
            tl[t as usize] = Some(parent);
        }
        self.dirty = true;
        Ok(())
    }

    /// Declares `member` to have *no* valid classification at the given
    /// moments (Fig. 2's "possible vacation": every cell ⊥).
    pub fn clear_at(
        &mut self,
        dim: &Dimension,
        member: MemberId,
        at: impl IntoIterator<Item = Moment>,
    ) -> Result<()> {
        let moments = self.moments;
        let tl = self.timeline_mut(dim, member);
        for t in at {
            if t >= moments {
                return Err(ModelError::MomentOutOfRange {
                    moment: t,
                    len: moments,
                });
            }
            tl[t as usize] = None;
        }
        self.dirty = true;
        Ok(())
    }

    fn check_parent(&self, dim: &Dimension, member: MemberId, parent: MemberId) -> Result<()> {
        dim.try_member(member)?;
        dim.try_member(parent)?;
        if dim.is_leaf(parent) && parent != MemberId::ROOT {
            return Err(ModelError::ParentMustBeNonLeaf {
                dim: dim.name().to_string(),
                member: dim.member_name(parent).to_string(),
            });
        }
        if parent == member || dim.is_ancestor(member, parent) {
            return Err(ModelError::CyclicHierarchy {
                dim: dim.name().to_string(),
                member: dim.member_name(member).to_string(),
            });
        }
        Ok(())
    }

    /// The parent of `member` at moment `t` (explicit timeline, falling
    /// back to the static hierarchy), or `None` when meaningless.
    pub fn parent_at(&self, dim: &Dimension, member: MemberId, t: Moment) -> Option<MemberId> {
        match self.timelines.get(&member) {
            Some(tl) => tl.get(t as usize).copied().flatten(),
            None => dim.parent(member),
        }
    }

    /// The effective root-to-leaf path of `leaf` at moment `t`, top-down
    /// below the root (ending at the direct parent). `None` when the leaf
    /// or any ancestor is unclassified at `t`.
    pub fn path_at(&self, dim: &Dimension, leaf: MemberId, t: Moment) -> Option<Vec<MemberId>> {
        let mut path = Vec::new();
        let mut cur = leaf;
        loop {
            let p = self.parent_at(dim, cur, t)?;
            if p == MemberId::ROOT {
                path.reverse();
                return Some(path);
            }
            path.push(p);
            // Defensive bound: a timeline cycle would loop forever.
            if path.len() > dim.member_count() {
                return None;
            }
            cur = p;
        }
    }

    /// Whether any explicit timeline exists for `member`.
    pub fn has_timeline(&self, member: MemberId) -> bool {
        self.timelines.contains_key(&member)
    }

    /// Recomputes the instance table from the timelines.
    ///
    /// Instances are numbered per leaf in order of first valid moment, and
    /// leaves in leaf-ordinal order, so a member's instances are contiguous
    /// along the axis.
    pub fn rebuild(&mut self, dim: &Dimension) {
        self.instances.clear();
        self.by_member.clear();
        // If any non-leaf member has a timeline, every leaf's path can
        // change; otherwise only leaves with their own timelines can.
        let nonleaf_changed = self
            .timelines
            .keys()
            .any(|&m| !dim.is_leaf(m) || m == MemberId::ROOT);
        for &leaf in dim.leaves() {
            let affected = nonleaf_changed || self.timelines.contains_key(&leaf);
            if !affected {
                // Fast path: single instance along the static path, valid
                // everywhere.
                let mut path = dim.ancestors(leaf);
                path.pop(); // drop the root
                path.reverse();
                self.push_instance(leaf, path, ValiditySet::all(self.moments));
                continue;
            }
            // Group moments by effective path, preserving first-seen order.
            let mut paths: Vec<(Vec<MemberId>, ValiditySet)> = Vec::new();
            for t in 0..self.moments {
                if let Some(p) = self.path_at(dim, leaf, t) {
                    match paths.iter_mut().find(|(q, _)| *q == p) {
                        Some((_, vs)) => vs.add(t),
                        None => {
                            let mut vs = ValiditySet::empty(self.moments);
                            vs.add(t);
                            paths.push((p, vs));
                        }
                    }
                }
            }
            for (path, vs) in paths {
                self.push_instance(leaf, path, vs);
            }
        }
        self.dirty = false;
    }

    fn push_instance(&mut self, member: MemberId, path: Vec<MemberId>, validity: ValiditySet) {
        let id = InstanceId(self.instances.len() as u32);
        self.instances.push(InstanceNode {
            member,
            path,
            validity,
        });
        self.by_member.entry(member).or_default().push(id);
    }

    #[inline]
    fn assert_clean(&self) {
        assert!(
            !self.dirty,
            "varying dimension mutated; call rebuild()/Schema::seal() before reading instances"
        );
    }

    /// All instances, in axis order.
    pub fn instances(&self) -> &[InstanceNode] {
        self.assert_clean();
        &self.instances
    }

    /// Number of instances — the length of this dimension's cube axis.
    pub fn instance_count(&self) -> u32 {
        self.assert_clean();
        self.instances.len() as u32
    }

    /// Borrow one instance.
    pub fn instance(&self, id: InstanceId) -> &InstanceNode {
        self.assert_clean();
        &self.instances[id.index()]
    }

    /// The instances of a leaf member, in first-valid order.
    pub fn instances_of(&self, member: MemberId) -> &[InstanceId] {
        self.assert_clean();
        self.by_member
            .get(&member)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The paper's `dₜ`: the unique instance of `member` valid at `t`.
    pub fn instance_at(&self, member: MemberId, t: Moment) -> Option<InstanceId> {
        self.assert_clean();
        self.instances_of(member)
            .iter()
            .copied()
            .find(|&i| self.instances[i.index()].validity.is_valid_at(t))
    }

    /// Members with more than one instance — the "changing" members the
    /// paper's experiments focus on.
    pub fn changing_members(&self) -> Vec<MemberId> {
        self.assert_clean();
        let mut out: Vec<MemberId> = self
            .by_member
            .iter()
            .filter(|(_, v)| v.len() > 1)
            .map(|(&m, _)| m)
            .collect();
        out.sort();
        out
    }

    /// Validates the Definition 3.1 invariant: instances of one member have
    /// pairwise-disjoint validity sets.
    pub fn validate(&self, dim: &Dimension) -> Result<()> {
        self.assert_clean();
        for (&member, ids) in &self.by_member {
            for (i, &a) in ids.iter().enumerate() {
                for &b in &ids[i + 1..] {
                    if self.instances[a.index()]
                        .validity
                        .intersects(&self.instances[b.index()].validity)
                    {
                        return Err(ModelError::OverlappingValidity {
                            dim: dim.name().to_string(),
                            member: dim.member_name(member).to_string(),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Display name of an instance, e.g. `"FTE/Joe"`.
    pub fn instance_name(&self, dim: &Dimension, id: InstanceId) -> String {
        let inst = self.instance(id);
        let mut segs: Vec<&str> = inst.path.iter().map(|&m| dim.member_name(m)).collect();
        segs.push(dim.member_name(inst.member));
        segs.join("/")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig. 1/2: Organization with Joe who is FTE in Jan, PTE in Feb,
    /// Contractor Mar onward except May (vacation).
    fn setup() -> (Dimension, VaryingDimension) {
        let mut d = Dimension::new("Organization");
        let fte = d.add_child_of_root("FTE").unwrap();
        let joe = d.add_member("Joe", fte).unwrap();
        d.add_member("Lisa", fte).unwrap();
        let pte = d.add_child_of_root("PTE").unwrap();
        d.add_member("Tom", pte).unwrap();
        let contr = d.add_child_of_root("Contractor").unwrap();
        d.add_member("Jane", contr).unwrap();
        d.seal();
        let mut v = VaryingDimension::new(DimensionId(0), DimensionId(1), 6);
        v.reclassify(&d, joe, pte, 1).unwrap(); // Feb
        v.reclassify(&d, joe, contr, 2).unwrap(); // Mar onward
        v.clear_at(&d, joe, [4]).unwrap(); // May vacation
        v.rebuild(&d);
        (d, v)
    }

    #[test]
    fn joe_has_three_instances() {
        let (d, v) = setup();
        let joe = d.resolve("Joe").unwrap();
        let ids = v.instances_of(joe);
        assert_eq!(ids.len(), 3);
        let names: Vec<String> = ids.iter().map(|&i| v.instance_name(&d, i)).collect();
        assert_eq!(names, vec!["FTE/Joe", "PTE/Joe", "Contractor/Joe"]);
        assert_eq!(
            v.instance(ids[0]).validity.iter().collect::<Vec<_>>(),
            vec![0]
        );
        assert_eq!(
            v.instance(ids[1]).validity.iter().collect::<Vec<_>>(),
            vec![1]
        );
        // Mar, Apr, Jun — May is the vacation.
        assert_eq!(
            v.instance(ids[2]).validity.iter().collect::<Vec<_>>(),
            vec![2, 3, 5]
        );
    }

    #[test]
    fn unchanged_members_have_one_full_instance() {
        let (d, v) = setup();
        let lisa = d.resolve("Lisa").unwrap();
        let ids = v.instances_of(lisa);
        assert_eq!(ids.len(), 1);
        assert_eq!(v.instance(ids[0]).validity.len(), 6);
    }

    #[test]
    fn instance_at_resolves_the_valid_one() {
        let (d, v) = setup();
        let joe = d.resolve("Joe").unwrap();
        let ids = v.instances_of(joe);
        assert_eq!(v.instance_at(joe, 0), Some(ids[0]));
        assert_eq!(v.instance_at(joe, 1), Some(ids[1]));
        assert_eq!(v.instance_at(joe, 3), Some(ids[2]));
        assert_eq!(v.instance_at(joe, 4), None); // vacation
    }

    #[test]
    fn reacquiring_parent_reuses_instance() {
        // Def. 3.1: Joe FTE→PTE in Mar, back to FTE in Jun ⇒ two instances,
        // VS(FTE/Joe) = {Jan..Feb} ∪ {Jun..}, VS(PTE/Joe) = {Mar, Apr, May}.
        let mut d = Dimension::new("Org");
        let fte = d.add_child_of_root("FTE").unwrap();
        let joe = d.add_member("Joe", fte).unwrap();
        let pte = d.add_child_of_root("PTE").unwrap();
        d.add_member("Tom", pte).unwrap();
        d.seal();
        let mut v = VaryingDimension::new(DimensionId(0), DimensionId(1), 8);
        v.reclassify(&d, joe, pte, 2).unwrap();
        v.reclassify(&d, joe, fte, 5).unwrap();
        v.rebuild(&d);
        let ids = v.instances_of(joe);
        assert_eq!(ids.len(), 2);
        assert_eq!(
            v.instance(ids[0]).validity.iter().collect::<Vec<_>>(),
            vec![0, 1, 5, 6, 7]
        );
        assert_eq!(
            v.instance(ids[1]).validity.iter().collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
    }

    #[test]
    fn validity_sets_disjoint_invariant() {
        let (d, v) = setup();
        v.validate(&d).unwrap();
    }

    #[test]
    fn changing_members_listed() {
        let (d, v) = setup();
        let joe = d.resolve("Joe").unwrap();
        assert_eq!(v.changing_members(), vec![joe]);
    }

    #[test]
    fn reclassify_rejects_leaf_parent() {
        let (d, mut v) = setup();
        let joe = d.resolve("Joe").unwrap();
        let tom = d.resolve("Tom").unwrap();
        assert!(matches!(
            v.reclassify(&d, joe, tom, 0),
            Err(ModelError::ParentMustBeNonLeaf { .. })
        ));
    }

    #[test]
    fn reclassify_rejects_cycle() {
        let (d, mut v) = setup();
        let fte = d.resolve("FTE").unwrap();
        assert!(matches!(
            v.reclassify(&d, fte, fte, 0),
            Err(ModelError::CyclicHierarchy { .. })
        ));
    }

    #[test]
    fn moment_bounds_checked() {
        let (d, mut v) = setup();
        let joe = d.resolve("Joe").unwrap();
        let contr = d.resolve("Contractor").unwrap();
        assert!(matches!(
            v.reclassify(&d, joe, contr, 6),
            Err(ModelError::MomentOutOfRange { .. })
        ));
    }

    #[test]
    fn nonleaf_reclassification_changes_leaf_paths() {
        // Moving a whole department changes every employee's root-to-leaf
        // path (the paper: "a change to the structure of any member of D
        // induces a change for D's leaf level members").
        let mut d = Dimension::new("Org");
        let east = d.add_child_of_root("East").unwrap();
        let west = d.add_child_of_root("West").unwrap();
        let sales = d.add_member("Sales", east).unwrap();
        let joe = d.add_member("Joe", sales).unwrap();
        d.add_member("Marketing", west).unwrap(); // keep West non-leaf
        d.seal();
        let mut v = VaryingDimension::new(DimensionId(0), DimensionId(1), 4);
        v.reclassify(&d, sales, west, 2).unwrap();
        v.rebuild(&d);
        let ids = v.instances_of(joe);
        assert_eq!(ids.len(), 2);
        assert_eq!(v.instance_name(&d, ids[0]), "East/Sales/Joe");
        assert_eq!(v.instance_name(&d, ids[1]), "West/Sales/Joe");
        assert_eq!(
            v.instance(ids[1]).validity.iter().collect::<Vec<_>>(),
            vec![2, 3]
        );
    }

    #[test]
    #[should_panic(expected = "rebuild")]
    fn reading_dirty_instances_panics() {
        let (d, mut v) = setup();
        let joe = d.resolve("Joe").unwrap();
        let fte = d.resolve("FTE").unwrap();
        v.reclassify(&d, joe, fte, 5).unwrap();
        let _ = v.instances();
    }
}
