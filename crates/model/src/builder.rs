//! Ergonomic schema construction.
//!
//! [`SchemaBuilder`] lets examples and workloads declare hierarchies as
//! nested specs instead of imperative `add_member` calls:
//!
//! ```
//! use olap_model::{SchemaBuilder, DimensionSpec};
//!
//! let schema = SchemaBuilder::new()
//!     .dimension(
//!         DimensionSpec::new("Time")
//!             .ordered()
//!             .tree(&[("Qtr1", &["Jan", "Feb", "Mar"][..]), ("Qtr2", &["Apr", "May", "Jun"])]),
//!     )
//!     .dimension(
//!         DimensionSpec::new("Organization")
//!             .tree(&[("FTE", &["Joe", "Lisa"][..]), ("PTE", &["Tom"]), ("Contractor", &["Jane"])]),
//!     )
//!     .varying("Organization", "Time")
//!     .build()
//!     .unwrap();
//! assert_eq!(schema.axis_len(schema.find_dimension("Time").unwrap()), 6);
//! ```

use crate::dimension::Dimension;
use crate::ids::MemberId;
use crate::schema::Schema;
use crate::Result;

/// Declarative spec for one dimension.
#[derive(Debug, Clone)]
pub struct DimensionSpec {
    name: String,
    ordered: bool,
    measure: bool,
    /// (parent path, member name) pairs applied in order; empty parent path
    /// means child-of-root.
    adds: Vec<(Vec<String>, String)>,
}

impl DimensionSpec {
    /// A new, empty dimension spec.
    pub fn new(name: &str) -> Self {
        DimensionSpec {
            name: name.to_string(),
            ordered: false,
            measure: false,
            adds: Vec::new(),
        }
    }

    /// Marks leaves as totally ordered (Time-like parameter dimensions).
    pub fn ordered(mut self) -> Self {
        self.ordered = true;
        self
    }

    /// Marks this as the measures dimension.
    pub fn measures(mut self) -> Self {
        self.measure = true;
        self
    }

    /// Adds flat leaf members under the root.
    pub fn leaves(mut self, names: &[&str]) -> Self {
        for n in names {
            self.adds.push((Vec::new(), n.to_string()));
        }
        self
    }

    /// Adds a two-level tree: `(group, leaves)` pairs.
    pub fn tree(mut self, groups: &[(&str, &[&str])]) -> Self {
        for (g, leaves) in groups {
            self.adds.push((Vec::new(), g.to_string()));
            for l in *leaves {
                self.adds.push((vec![g.to_string()], l.to_string()));
            }
        }
        self
    }

    /// Adds a single member under a `/`-separated parent path (empty string
    /// for the root).
    pub fn member(mut self, parent_path: &str, name: &str) -> Self {
        let path: Vec<String> = parent_path
            .split('/')
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect();
        self.adds.push((path, name.to_string()));
        self
    }

    fn build(&self) -> Result<Dimension> {
        let mut d = Dimension::new(&self.name);
        d.set_ordered(self.ordered);
        d.set_measure(self.measure);
        for (path, name) in &self.adds {
            let mut parent = MemberId::ROOT;
            for seg in path {
                parent = d.find_under(parent, seg).ok_or_else(|| {
                    crate::ModelError::UnknownMemberName {
                        dim: self.name.clone(),
                        member: seg.clone(),
                    }
                })?;
            }
            d.add_member(name, parent)?;
        }
        d.seal();
        Ok(d)
    }
}

/// Builds a [`Schema`] from dimension specs plus varying declarations and
/// structural changes.
#[derive(Debug, Default)]
pub struct SchemaBuilder {
    dims: Vec<DimensionSpec>,
    varying: Vec<(String, String)>,
    /// (dim, member, new parent, moment name)
    changes: Vec<(String, String, String, String)>,
    /// (dim, member, moment names) vacations
    clears: Vec<(String, String, Vec<String>)>,
}

impl SchemaBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a dimension.
    pub fn dimension(mut self, spec: DimensionSpec) -> Self {
        self.dims.push(spec);
        self
    }

    /// Declares `varying` to change as a function of `parameter`.
    pub fn varying(mut self, varying: &str, parameter: &str) -> Self {
        self.varying
            .push((varying.to_string(), parameter.to_string()));
        self
    }

    /// Schedules a reclassification: from moment `at` (a parameter-leaf
    /// name) onward, `member` reports to `new_parent` (names within `dim`).
    pub fn reclassify(mut self, dim: &str, member: &str, new_parent: &str, at: &str) -> Self {
        self.changes.push((
            dim.to_string(),
            member.to_string(),
            new_parent.to_string(),
            at.to_string(),
        ));
        self
    }

    /// Schedules vacations: `member` is meaningless at the named moments.
    pub fn clear_at(mut self, dim: &str, member: &str, at: &[&str]) -> Self {
        self.clears.push((
            dim.to_string(),
            member.to_string(),
            at.iter().map(|s| s.to_string()).collect(),
        ));
        self
    }

    /// Builds and seals the schema.
    pub fn build(self) -> Result<Schema> {
        let mut schema = Schema::new();
        for spec in &self.dims {
            let id = schema.add_dimension(&spec.name);
            *schema.dim_mut(id) = spec.build()?;
        }
        for (v, p) in &self.varying {
            let vd = schema.resolve_dimension(v)?;
            let pd = schema.resolve_dimension(p)?;
            schema.make_varying(vd, pd)?;
        }
        for (dim, member, parent, at) in &self.changes {
            let d = schema.resolve_dimension(dim)?;
            let param = schema.try_varying(d)?.parameter_dim();
            let m = schema.dim(d).resolve(member)?;
            let f = schema.dim(d).resolve(parent)?;
            let leaf = schema.dim(param).resolve(at)?;
            let t = schema
                .moment_of(param, leaf)
                .ok_or_else(|| crate::ModelError::NotALeaf {
                    dim: schema.dim(param).name().to_string(),
                    member: at.clone(),
                })?;
            schema.reclassify(d, m, f, t)?;
        }
        for (dim, member, ats) in &self.clears {
            let d = schema.resolve_dimension(dim)?;
            let param = schema.try_varying(d)?.parameter_dim();
            let m = schema.dim(d).resolve(member)?;
            let mut moments = Vec::with_capacity(ats.len());
            for at in ats {
                let leaf = schema.dim(param).resolve(at)?;
                moments.push(schema.moment_of(param, leaf).ok_or_else(|| {
                    crate::ModelError::NotALeaf {
                        dim: schema.dim(param).name().to_string(),
                        member: at.clone(),
                    }
                })?);
            }
            schema.clear_at(d, m, moments)?;
        }
        schema.seal();
        schema.validate()?;
        Ok(schema)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_running_example_shape() {
        let schema = SchemaBuilder::new()
            .dimension(DimensionSpec::new("Time").ordered().tree(&[
                ("Qtr1", &["Jan", "Feb", "Mar"][..]),
                ("Qtr2", &["Apr", "May", "Jun"]),
            ]))
            .dimension(DimensionSpec::new("Organization").tree(&[
                ("FTE", &["Joe", "Lisa"][..]),
                ("PTE", &["Tom"]),
                ("Contractor", &["Jane"]),
            ]))
            .varying("Organization", "Time")
            .reclassify("Organization", "Joe", "PTE", "Feb")
            .reclassify("Organization", "Joe", "Contractor", "Mar")
            .clear_at("Organization", "Joe", &["May"])
            .build()
            .unwrap();
        let org = schema.resolve_dimension("Organization").unwrap();
        let joe = schema.dim(org).resolve("Joe").unwrap();
        let v = schema.varying(org).unwrap();
        assert_eq!(v.instances_of(joe).len(), 3);
        assert_eq!(schema.axis_len(org), 6); // 3 Joe + Lisa + Tom + Jane
    }

    #[test]
    fn nested_member_paths() {
        let schema = SchemaBuilder::new()
            .dimension(
                DimensionSpec::new("Location")
                    .member("", "East")
                    .member("East", "NY")
                    .member("East/NY", "NYC"),
            )
            .build()
            .unwrap();
        let loc = schema.resolve_dimension("Location").unwrap();
        assert!(schema.dim(loc).resolve_path("East/NY/NYC").is_ok());
        assert_eq!(schema.axis_len(loc), 1);
    }

    #[test]
    fn unknown_parent_path_errors() {
        let err = SchemaBuilder::new()
            .dimension(DimensionSpec::new("X").member("Nope", "Kid"))
            .build();
        assert!(err.is_err());
    }

    #[test]
    fn reclassify_by_names_checks_moment() {
        let err = SchemaBuilder::new()
            .dimension(DimensionSpec::new("Time").ordered().leaves(&["Jan"]))
            .dimension(DimensionSpec::new("Org").tree(&[("A", &["x"][..]), ("B", &[])]))
            .varying("Org", "Time")
            .reclassify("Org", "x", "B", "Zebruary")
            .build();
        assert!(err.is_err());
    }
}
