//! A compact fixed-capacity bit set.
//!
//! Used as the representation of [validity sets](crate::ValiditySet) (sets
//! of parameter-dimension moments) and for member-set bookkeeping during
//! query evaluation. The capacity is fixed at construction; all set
//! operations require equal capacities, which catches cross-dimension mixups
//! at the call site in debug builds.

/// A fixed-capacity set of `u32` ordinals backed by `u64` words.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Vec<u64>,
    /// Number of addressable bits. Bits at positions `>= len` are always 0.
    len: u32,
}

impl BitSet {
    /// Creates an empty set with capacity for ordinals `0..len`.
    pub fn new(len: u32) -> Self {
        let nwords = (len as usize).div_ceil(64);
        BitSet {
            words: vec![0; nwords],
            len,
        }
    }

    /// Creates a set containing every ordinal in `0..len`.
    pub fn full(len: u32) -> Self {
        let mut s = BitSet::new(len);
        s.insert_all();
        s
    }

    /// Creates a set from an iterator of ordinals.
    ///
    /// # Panics
    /// Panics if any ordinal is `>= len`.
    pub fn from_iter(len: u32, iter: impl IntoIterator<Item = u32>) -> Self {
        let mut s = BitSet::new(len);
        for i in iter {
            s.insert(i);
        }
        s
    }

    /// The capacity (number of addressable ordinals).
    #[inline]
    pub fn capacity(&self) -> u32 {
        self.len
    }

    /// Inserts `i` into the set. Returns whether it was newly inserted.
    ///
    /// # Panics
    /// Panics if `i >= capacity`.
    #[inline]
    pub fn insert(&mut self, i: u32) -> bool {
        assert!(i < self.len, "bit {} out of range {}", i, self.len);
        let (w, b) = (i as usize / 64, i % 64);
        let newly = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        newly
    }

    /// Removes `i` from the set. Returns whether it was present.
    #[inline]
    pub fn remove(&mut self, i: u32) -> bool {
        assert!(i < self.len, "bit {} out of range {}", i, self.len);
        let (w, b) = (i as usize / 64, i % 64);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        was
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, i: u32) -> bool {
        if i >= self.len {
            return false;
        }
        let (w, b) = (i as usize / 64, i % 64);
        self.words[w] & (1 << b) != 0
    }

    /// Inserts every ordinal in `0..capacity`.
    pub fn insert_all(&mut self) {
        for w in &mut self.words {
            *w = u64::MAX;
        }
        self.trim();
    }

    /// Removes every ordinal.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// Number of ordinals in the set.
    pub fn count(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// `true` if no ordinal is present.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// In-place union. Capacities must match.
    pub fn union_with(&mut self, other: &BitSet) {
        self.check(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection. Capacities must match.
    pub fn intersect_with(&mut self, other: &BitSet) {
        self.check(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place difference (`self \ other`). Capacities must match.
    pub fn difference_with(&mut self, other: &BitSet) {
        self.check(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// `true` if the sets share at least one ordinal.
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.check(other);
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// `true` if every ordinal of `self` is in `other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        self.check(other);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// The smallest ordinal present, if any.
    pub fn min(&self) -> Option<u32> {
        for (wi, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(wi as u32 * 64 + w.trailing_zeros());
            }
        }
        None
    }

    /// The largest ordinal present, if any.
    pub fn max(&self) -> Option<u32> {
        for (wi, &w) in self.words.iter().enumerate().rev() {
            if w != 0 {
                return Some(wi as u32 * 64 + 63 - w.leading_zeros());
            }
        }
        None
    }

    /// The backing words, 64 ordinals per word (bit `i % 64` of word
    /// `i / 64`). Bits at positions `>= capacity` are always 0.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Reads the 64 bits starting at ordinal `start` as one word (bit 0 of
    /// the result is ordinal `start`). Bits beyond capacity read as 0.
    #[inline]
    pub fn read_word(&self, start: u32) -> u64 {
        let (w, b) = (start as usize / 64, start % 64);
        let lo = self.words.get(w).copied().unwrap_or(0) >> b;
        if b == 0 {
            lo
        } else {
            let hi = self.words.get(w + 1).copied().unwrap_or(0);
            lo | (hi << (64 - b))
        }
    }

    /// ORs `len` bits of `src` (starting at `src_start`) into `self`
    /// starting at `dst_start`. The ranges may be at different word
    /// alignments; the copy runs a word at a time, not a bit at a time.
    ///
    /// # Panics
    /// Panics if either range exceeds its set's capacity.
    pub fn or_range(&mut self, dst_start: u32, src: &BitSet, src_start: u32, len: u32) {
        assert!(
            dst_start as u64 + len as u64 <= self.len as u64,
            "or_range dst {}+{} out of range {}",
            dst_start,
            len,
            self.len
        );
        assert!(
            src_start as u64 + len as u64 <= src.len as u64,
            "or_range src {}+{} out of range {}",
            src_start,
            len,
            src.len
        );
        let mut done = 0u32;
        while done < len {
            let d = dst_start + done;
            let (dw, db) = (d as usize / 64, d % 64);
            let n = (64 - db).min(len - done);
            let bits = src.read_word(src_start + done) & Self::low_mask(n);
            self.words[dw] |= bits << db;
            done += n;
        }
    }

    /// Number of ordinals present in `start..start + len`.
    ///
    /// # Panics
    /// Panics if the range exceeds the capacity.
    pub fn count_range(&self, start: u32, len: u32) -> u32 {
        assert!(
            start as u64 + len as u64 <= self.len as u64,
            "count_range {}+{} out of range {}",
            start,
            len,
            self.len
        );
        let mut done = 0u32;
        let mut cnt = 0u32;
        while done < len {
            let n = (len - done).min(64);
            cnt += (self.read_word(start + done) & Self::low_mask(n)).count_ones();
            done += n;
        }
        cnt
    }

    /// A mask of the low `n` bits (`n <= 64`).
    #[inline]
    fn low_mask(n: u32) -> u64 {
        if n >= 64 {
            u64::MAX
        } else {
            (1u64 << n) - 1
        }
    }

    /// Iterates ordinals in ascending order.
    pub fn iter(&self) -> BitSetIter<'_> {
        BitSetIter {
            set: self,
            word: 0,
            bits: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Clears any bits at or beyond `len` (after `insert_all`).
    fn trim(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    #[inline]
    fn check(&self, other: &BitSet) {
        debug_assert_eq!(
            self.len, other.len,
            "BitSet capacity mismatch: {} vs {}",
            self.len, other.len
        );
    }
}

impl std::fmt::Debug for BitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// Ascending iterator over the ordinals of a [`BitSet`].
pub struct BitSetIter<'a> {
    set: &'a BitSet,
    word: usize,
    bits: u64,
}

impl Iterator for BitSetIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        loop {
            if self.bits != 0 {
                let b = self.bits.trailing_zeros();
                self.bits &= self.bits - 1;
                return Some(self.word as u32 * 64 + b);
            }
            self.word += 1;
            if self.word >= self.set.words.len() {
                return None;
            }
            self.bits = self.set.words[self.word];
        }
    }
}

impl<'a> IntoIterator for &'a BitSet {
    type Item = u32;
    type IntoIter = BitSetIter<'a>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(100);
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.contains(3));
        assert!(!s.contains(4));
        assert!(s.remove(3));
        assert!(!s.remove(3));
        assert!(s.is_empty());
    }

    #[test]
    fn full_and_trim() {
        let s = BitSet::full(70);
        assert_eq!(s.count(), 70);
        assert!(s.contains(69));
        assert!(!s.contains(70));
        assert_eq!(s.max(), Some(69));
    }

    #[test]
    fn set_ops() {
        let a = BitSet::from_iter(10, [1, 2, 3]);
        let b = BitSet::from_iter(10, [3, 4]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 2, 3, 4]);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![3]);
        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1, 2]);
        assert!(a.intersects(&b));
        assert!(i.is_subset(&a));
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn min_max_across_words() {
        let s = BitSet::from_iter(200, [65, 130, 199]);
        assert_eq!(s.min(), Some(65));
        assert_eq!(s.max(), Some(199));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![65, 130, 199]);
    }

    #[test]
    fn empty_set_iterates_nothing() {
        let s = BitSet::new(0);
        assert_eq!(s.iter().count(), 0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        let mut s = BitSet::new(4);
        s.insert(4);
    }

    #[test]
    fn read_word_spans_word_boundary() {
        let s = BitSet::from_iter(200, [0, 63, 64, 70, 127, 128]);
        assert_eq!(s.read_word(0) & 1, 1);
        assert_eq!(s.read_word(63) & 0b11, 0b11); // bits 63, 64
        let w = s.read_word(60);
        assert_eq!(w & (1 << 3), 1 << 3); // bit 63
        assert_eq!(w & (1 << 4), 1 << 4); // bit 64
        assert_eq!(w & (1 << 10), 1 << 10); // bit 70
                                            // Bits past capacity read as 0.
        assert_eq!(BitSet::from_iter(10, [9]).read_word(9), 1);
    }

    #[test]
    fn or_range_misaligned() {
        // Copy a misaligned window and check bit-for-bit against contains().
        let src = BitSet::from_iter(300, (0..300).filter(|i| i % 7 == 0 || i % 11 == 3));
        for &(dst_start, src_start, len) in &[
            (0u32, 0u32, 300u32),
            (5, 17, 200),
            (63, 1, 130),
            (64, 64, 64),
            (1, 0, 63),
        ] {
            let mut dst = BitSet::from_iter(400, [0, 399]);
            dst.or_range(dst_start, &src, src_start, len);
            for i in 0..400u32 {
                let expect = dst_start <= i
                    && i < dst_start + len
                    && src.contains(src_start + (i - dst_start))
                    || i == 0
                    || i == 399;
                assert_eq!(
                    dst.contains(i),
                    expect,
                    "bit {i} for window ({dst_start},{src_start},{len})"
                );
            }
        }
    }

    #[test]
    fn or_range_is_or_not_assign() {
        // Pre-existing dst bits inside the window survive.
        let src = BitSet::new(64);
        let mut dst = BitSet::from_iter(64, [10, 20]);
        dst.or_range(5, &src, 0, 30);
        assert!(dst.contains(10) && dst.contains(20));
    }

    #[test]
    fn count_range_matches_scalar() {
        let s = BitSet::from_iter(300, (0..300).filter(|i| i % 3 == 0));
        for &(start, len) in &[
            (0u32, 300u32),
            (1, 100),
            (63, 2),
            (64, 64),
            (250, 0),
            (299, 1),
        ] {
            let scalar = (start..start + len).filter(|&i| s.contains(i)).count() as u32;
            assert_eq!(s.count_range(start, len), scalar, "range ({start},{len})");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn or_range_out_of_bounds_panics() {
        let src = BitSet::new(10);
        let mut dst = BitSet::new(10);
        dst.or_range(5, &src, 0, 6);
    }
}
