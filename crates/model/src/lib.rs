//! # olap-model
//!
//! The multidimensional data model underlying *"What-if OLAP Queries with
//! Changing Dimensions"* (Lakshmanan, Russakovsky, Sashikanth; ICDE 2008).
//!
//! The classic OLAP model — dimensions organizing members into hierarchies,
//! cubes mapping member combinations to values — is extended here with the
//! paper's Section 2/3 notions:
//!
//! * **Varying dimensions** (Definition 2.1): dimensions whose hierarchical
//!   structure changes as a function of another dimension.
//! * **Parameter dimensions**: the dimensions (ordered, like `Time`, or
//!   unordered, like `Location`) that drive those changes.
//! * **Member instances**: when a member is reclassified under a different
//!   parent, each distinct root-to-leaf path becomes an *instance* of the
//!   member (e.g. `FTE/Joe`, `PTE/Joe`, `Contractor/Joe`).
//! * **Validity sets** (`VS(dᵢ)`): the set of leaf-level parameter members
//!   (*moments*) over which an instance is valid. Validity sets of distinct
//!   instances of one member are always pairwise disjoint.
//!
//! A dimension's *axis* is the sequence of cell slots it contributes to a
//! cube: leaf members for ordinary dimensions, leaf member instances for
//! varying dimensions (mirroring how the paper's Fig. 2 shows one row per
//! instance).
//!
//! ## Quick tour
//!
//! ```
//! use olap_model::{Schema, ValiditySet};
//!
//! let mut schema = Schema::new();
//! let time = schema.add_dimension("Time");
//! let jan = schema.dim_mut(time).add_child_of_root("Jan").unwrap();
//! let feb = schema.dim_mut(time).add_child_of_root("Feb").unwrap();
//! schema.dim_mut(time).set_ordered(true);
//!
//! let org = schema.add_dimension("Organization");
//! let fte = schema.dim_mut(org).add_child_of_root("FTE").unwrap();
//! let pte = schema.dim_mut(org).add_child_of_root("PTE").unwrap();
//! let joe = schema.dim_mut(org).add_member("Joe", fte).unwrap();
//! let tom = schema.dim_mut(org).add_member("Tom", pte).unwrap();
//!
//! // Organization varies with Time: Joe moves from FTE to PTE in Feb.
//! schema.make_varying(org, time).unwrap();
//! schema.reclassify(org, joe, pte, 1).unwrap();
//! schema.seal();
//! let v = schema.varying(org).unwrap();
//! assert_eq!(v.instances_of(joe).len(), 2);
//! ```

pub mod bitset;
pub mod builder;
pub mod dimension;
pub mod error;
pub mod ids;
pub mod member;
pub mod schema;
pub mod validity;
pub mod varying;

pub use bitset::BitSet;
pub use builder::{DimensionSpec, SchemaBuilder};
pub use dimension::Dimension;
pub use error::ModelError;
pub use ids::{AxisSlot, DimensionId, InstanceId, MemberId, Moment};
pub use member::MemberNode;
pub use schema::Schema;
pub use validity::ValiditySet;
pub use varying::{InstanceNode, VaryingDimension};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ModelError>;
