//! Dimensions and their (static) member hierarchies.

use crate::error::ModelError;
use crate::ids::MemberId;
use crate::member::MemberNode;
use crate::Result;
use std::collections::HashMap;

/// A dimension: a named hierarchy of members.
///
/// Every dimension owns a synthetic root member ([`MemberId::ROOT`]) named
/// after the dimension itself (as in the paper's Fig. 1, where the
/// top member of the Organization dimension *is* "Organization").
///
/// The hierarchy stored here is the *static* one. A varying dimension's
/// time-dependent reclassifications are tracked separately in
/// [`crate::VaryingDimension`] so the original structure stays intact.
#[derive(Debug, Clone)]
pub struct Dimension {
    name: String,
    members: Vec<MemberNode>,
    /// Leaf members in first-added order; recomputed lazily.
    leaves: Vec<MemberId>,
    /// Leaf member → ordinal, rebuilt by [`Dimension::seal`].
    leaf_ords: HashMap<MemberId, u32>,
    leaves_dirty: bool,
    /// (parent, name) → member for duplicate detection and lookup.
    by_name: HashMap<String, Vec<MemberId>>,
    /// Whether leaf members carry a meaningful total order (e.g. Time).
    ordered: bool,
    /// Whether this dimension holds measures (Salary, Benefits, ...).
    is_measure: bool,
}

impl Dimension {
    /// Creates a dimension with only its root member.
    pub fn new(name: &str) -> Self {
        let mut by_name = HashMap::new();
        by_name.insert(name.to_string(), vec![MemberId::ROOT]);
        Dimension {
            name: name.to_string(),
            members: vec![MemberNode::root(name)],
            leaves: Vec::new(),
            leaf_ords: HashMap::new(),
            leaves_dirty: true,
            by_name,
            ordered: false,
            is_measure: false,
        }
    }

    /// The dimension's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Marks leaf members as totally ordered (parameter dimensions like
    /// Time). Unordered dimensions (like Location) can still parameterize
    /// changes; only the *dynamic* perspective semantics require order.
    pub fn set_ordered(&mut self, ordered: bool) {
        self.ordered = ordered;
    }

    /// Whether leaf members carry a total order.
    pub fn is_ordered(&self) -> bool {
        self.ordered
    }

    /// Marks this dimension as the measures dimension.
    pub fn set_measure(&mut self, m: bool) {
        self.is_measure = m;
    }

    /// Whether this is the measures dimension.
    pub fn is_measure(&self) -> bool {
        self.is_measure
    }

    /// The root member id (always `MemberId::ROOT`).
    pub fn root(&self) -> MemberId {
        MemberId::ROOT
    }

    /// Adds a member under `parent`. Sibling names must be unique.
    pub fn add_member(&mut self, name: &str, parent: MemberId) -> Result<MemberId> {
        if parent.index() >= self.members.len() {
            return Err(ModelError::UnknownMember {
                dim: self.name.clone(),
                member: parent,
            });
        }
        let dup = self
            .by_name
            .get(name)
            .map(|ids| {
                ids.iter()
                    .any(|&id| self.members[id.index()].parent == Some(parent))
            })
            .unwrap_or(false);
        if dup {
            return Err(ModelError::DuplicateMember {
                dim: self.name.clone(),
                member: name.to_string(),
            });
        }
        let level = self.members[parent.index()].level + 1;
        let id = MemberId(self.members.len() as u32);
        self.members.push(MemberNode::child(name, parent, level));
        self.members[parent.index()].children.push(id);
        self.by_name.entry(name.to_string()).or_default().push(id);
        self.leaves_dirty = true;
        Ok(id)
    }

    /// Adds a member directly under the root.
    pub fn add_child_of_root(&mut self, name: &str) -> Result<MemberId> {
        self.add_member(name, MemberId::ROOT)
    }

    /// Number of members, including the root.
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// Borrow a member node.
    pub fn member(&self, id: MemberId) -> &MemberNode {
        &self.members[id.index()]
    }

    /// Checked member lookup.
    pub fn try_member(&self, id: MemberId) -> Result<&MemberNode> {
        self.members
            .get(id.index())
            .ok_or_else(|| ModelError::UnknownMember {
                dim: self.name.clone(),
                member: id,
            })
    }

    /// The member's display name.
    pub fn member_name(&self, id: MemberId) -> &str {
        &self.members[id.index()].name
    }

    /// Looks a member up by name. If several members share the name (the
    /// paper allows e.g. "10" under different parents in Fig. 1), the first
    /// added wins; use [`Dimension::find_under`] to disambiguate.
    pub fn find(&self, name: &str) -> Option<MemberId> {
        self.by_name.get(name).and_then(|v| v.first()).copied()
    }

    /// Looks up a member by name among children of `parent`.
    pub fn find_under(&self, parent: MemberId, name: &str) -> Option<MemberId> {
        self.by_name.get(name).and_then(|ids| {
            ids.iter()
                .find(|&&id| self.members[id.index()].parent == Some(parent))
                .copied()
        })
    }

    /// Looks up by name, erroring with dimension context when missing.
    pub fn resolve(&self, name: &str) -> Result<MemberId> {
        self.find(name)
            .ok_or_else(|| ModelError::UnknownMemberName {
                dim: self.name.clone(),
                member: name.to_string(),
            })
    }

    /// Resolves a `/`-separated path from the root, e.g. `"FTE/Joe"`.
    pub fn resolve_path(&self, path: &str) -> Result<MemberId> {
        let mut cur = MemberId::ROOT;
        for seg in path.split('/').filter(|s| !s.is_empty()) {
            cur = self
                .find_under(cur, seg)
                .ok_or_else(|| ModelError::UnknownMemberName {
                    dim: self.name.clone(),
                    member: path.to_string(),
                })?;
        }
        Ok(cur)
    }

    /// All leaf members, in first-added order. This order defines the
    /// dimension's axis for non-varying dimensions and the *moment*
    /// ordinals for parameter dimensions.
    pub fn leaves(&self) -> &[MemberId] {
        debug_assert!(
            !self.leaves_dirty,
            "call Dimension::seal() (or Schema::seal) after mutating the hierarchy"
        );
        &self.leaves
    }

    /// Recomputes the leaf list. Called by [`crate::Schema::seal`]; also
    /// safe to call directly after hierarchy edits.
    pub fn seal(&mut self) {
        self.leaves = (0..self.members.len() as u32)
            .map(MemberId)
            .filter(|&m| self.members[m.index()].is_leaf() && m != MemberId::ROOT)
            .collect();
        self.leaf_ords = self
            .leaves
            .iter()
            .enumerate()
            .map(|(i, &m)| (m, i as u32))
            .collect();
        self.leaves_dirty = false;
    }

    /// Number of leaf members (sealing if needed is the caller's job).
    pub fn leaf_count(&self) -> u32 {
        self.leaves.len() as u32
    }

    /// Ordinal of a leaf member along the axis / moment scale.
    pub fn leaf_ordinal(&self, id: MemberId) -> Option<u32> {
        self.leaf_ords.get(&id).copied()
    }

    /// The leaf member at a given ordinal.
    pub fn leaf_at(&self, ord: u32) -> Option<MemberId> {
        self.leaves.get(ord as usize).copied()
    }

    /// Names of all leaves, in ordinal order (handy for rendering).
    pub fn leaf_names(&self) -> Vec<String> {
        self.leaves
            .iter()
            .map(|&l| self.members[l.index()].name.clone())
            .collect()
    }

    /// Is `m` a leaf?
    pub fn is_leaf(&self, m: MemberId) -> bool {
        self.members[m.index()].is_leaf()
    }

    /// Direct children of `m`.
    pub fn children(&self, m: MemberId) -> &[MemberId] {
        &self.members[m.index()].children
    }

    /// Parent of `m` in the static hierarchy.
    pub fn parent(&self, m: MemberId) -> Option<MemberId> {
        self.members[m.index()].parent
    }

    /// Path from `m` (exclusive) up to the root (inclusive), bottom-up.
    pub fn ancestors(&self, m: MemberId) -> Vec<MemberId> {
        let mut out = Vec::new();
        let mut cur = self.members[m.index()].parent;
        while let Some(p) = cur {
            out.push(p);
            cur = self.members[p.index()].parent;
        }
        out
    }

    /// Is `anc` a proper ancestor of `m` in the static hierarchy?
    pub fn is_ancestor(&self, anc: MemberId, m: MemberId) -> bool {
        let mut cur = self.members[m.index()].parent;
        while let Some(p) = cur {
            if p == anc {
                return true;
            }
            cur = self.members[p.index()].parent;
        }
        false
    }

    /// All proper descendants of `m`, preorder.
    pub fn descendants(&self, m: MemberId) -> Vec<MemberId> {
        let mut out = Vec::new();
        let mut stack: Vec<MemberId> = self.members[m.index()].children.clone();
        stack.reverse();
        while let Some(c) = stack.pop() {
            out.push(c);
            for &g in self.members[c.index()].children.iter().rev() {
                stack.push(g);
            }
        }
        out
    }

    /// Leaf descendants of `m` (or `m` itself if it is a leaf), preorder.
    pub fn leaf_descendants(&self, m: MemberId) -> Vec<MemberId> {
        if self.is_leaf(m) && m != MemberId::ROOT {
            return vec![m];
        }
        self.descendants(m)
            .into_iter()
            .filter(|&d| self.members[d.index()].is_leaf())
            .collect()
    }

    /// Members at exactly `level` (root = level 0), preorder.
    pub fn members_at_level(&self, level: u32) -> Vec<MemberId> {
        let mut out = Vec::new();
        let mut stack = vec![MemberId::ROOT];
        while let Some(m) = stack.pop() {
            let node = &self.members[m.index()];
            if node.level == level {
                out.push(m);
            } else if node.level < level {
                for &c in node.children.iter().rev() {
                    stack.push(c);
                }
            }
        }
        out
    }

    /// Maximum depth of the hierarchy.
    pub fn depth(&self) -> u32 {
        self.members.iter().map(|m| m.level).max().unwrap_or(0)
    }

    /// Full `/`-joined path of a member from the root (root omitted).
    pub fn path_name(&self, m: MemberId) -> String {
        let mut segs = vec![self.members[m.index()].name.clone()];
        let mut cur = self.members[m.index()].parent;
        while let Some(p) = cur {
            if p != MemberId::ROOT {
                segs.push(self.members[p.index()].name.clone());
            }
            cur = self.members[p.index()].parent;
        }
        segs.reverse();
        segs.join("/")
    }

    /// Iterate all member ids (including the root).
    pub fn member_ids(&self) -> impl Iterator<Item = MemberId> {
        (0..self.members.len() as u32).map(MemberId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn org() -> Dimension {
        // Fig. 1's Organization dimension.
        let mut d = Dimension::new("Organization");
        let fte = d.add_child_of_root("FTE").unwrap();
        d.add_member("Joe", fte).unwrap();
        d.add_member("Lisa", fte).unwrap();
        d.add_member("Sue", fte).unwrap();
        let pte = d.add_child_of_root("PTE").unwrap();
        d.add_member("Tom", pte).unwrap();
        d.add_member("Dave", pte).unwrap();
        let contr = d.add_child_of_root("Contractor").unwrap();
        d.add_member("Jane", contr).unwrap();
        d.seal();
        d
    }

    #[test]
    fn hierarchy_shape() {
        let d = org();
        assert_eq!(d.member_count(), 10); // root + 3 types + 6 employees
        assert_eq!(d.leaf_count(), 6);
        assert_eq!(d.depth(), 2);
        let fte = d.find("FTE").unwrap();
        assert_eq!(d.children(fte).len(), 3);
        assert_eq!(d.member(fte).level, 1);
    }

    #[test]
    fn paths_and_resolution() {
        let d = org();
        let joe = d.resolve_path("FTE/Joe").unwrap();
        assert_eq!(d.path_name(joe), "FTE/Joe");
        assert_eq!(d.member_name(joe), "Joe");
        assert!(d.resolve_path("PTE/Joe").is_err());
    }

    #[test]
    fn ancestors_and_descendants() {
        let d = org();
        let joe = d.resolve("Joe").unwrap();
        let fte = d.resolve("FTE").unwrap();
        assert_eq!(d.ancestors(joe), vec![fte, MemberId::ROOT]);
        assert!(d.is_ancestor(fte, joe));
        assert!(!d.is_ancestor(joe, fte));
        let leaves = d.leaf_descendants(fte);
        assert_eq!(leaves.len(), 3);
        assert_eq!(d.leaf_descendants(MemberId::ROOT).len(), 6);
    }

    #[test]
    fn leaf_ordinals_are_stable() {
        let d = org();
        let joe = d.resolve("Joe").unwrap();
        assert_eq!(d.leaf_ordinal(joe), Some(0));
        assert_eq!(d.leaf_at(0), Some(joe));
        let jane = d.resolve("Jane").unwrap();
        assert_eq!(d.leaf_ordinal(jane), Some(5));
    }

    #[test]
    fn duplicate_sibling_rejected_but_cousins_ok() {
        let mut d = Dimension::new("Location");
        let east = d.add_child_of_root("East").unwrap();
        let west = d.add_child_of_root("West").unwrap();
        d.add_member("Springfield", east).unwrap();
        // Same name under a different parent is fine (Fig. 1 has "10" twice).
        d.add_member("Springfield", west).unwrap();
        assert!(d.add_member("Springfield", east).is_err());
    }

    #[test]
    fn members_at_level() {
        let d = org();
        assert_eq!(d.members_at_level(0), vec![MemberId::ROOT]);
        assert_eq!(d.members_at_level(1).len(), 3);
        assert_eq!(d.members_at_level(2).len(), 6);
    }

    #[test]
    fn leaf_names_in_order() {
        let d = org();
        assert_eq!(
            d.leaf_names(),
            vec!["Joe", "Lisa", "Sue", "Tom", "Dave", "Jane"]
        );
    }
}
