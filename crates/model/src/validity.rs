//! Validity sets (`VS(dᵢ)`) — the moments over which a member instance is
//! valid (paper, Section 2 and Definition 3.1).
//!
//! A validity set is a subset of the leaf-level members (*moments*) of a
//! parameter dimension. For ordered parameter dimensions the moment ordinal
//! carries the temporal order, which the perspective operator Φ exploits
//! (e.g. `Stretch(d)` in Definition 4.3 is a union of half-open intervals).

use crate::bitset::BitSet;
use crate::ids::Moment;

/// The set of moments over which a member instance is valid.
///
/// Invariant maintained by [`crate::VaryingDimension`]: validity sets of
/// distinct instances of the same member are pairwise disjoint ("at any
/// given time, at most one instance of a member is valid").
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct ValiditySet {
    bits: BitSet,
}

impl ValiditySet {
    /// An empty validity set over a parameter dimension with `moments`
    /// leaf members.
    pub fn empty(moments: u32) -> Self {
        ValiditySet {
            bits: BitSet::new(moments),
        }
    }

    /// A validity set covering every moment (a never-reclassified member).
    pub fn all(moments: u32) -> Self {
        ValiditySet {
            bits: BitSet::full(moments),
        }
    }

    /// Builds a validity set from explicit moments.
    pub fn of(moments: u32, items: impl IntoIterator<Item = Moment>) -> Self {
        ValiditySet {
            bits: BitSet::from_iter(moments, items),
        }
    }

    /// A validity set covering the half-open interval `[from, to)`.
    pub fn interval(moments: u32, from: Moment, to: Moment) -> Self {
        ValiditySet {
            bits: BitSet::from_iter(moments, from..to.min(moments)),
        }
    }

    /// A validity set covering `[from, +∞)` — i.e. up to the last moment.
    pub fn from_onward(moments: u32, from: Moment) -> Self {
        Self::interval(moments, from, moments)
    }

    /// Number of leaf members of the parameter dimension.
    #[inline]
    pub fn moments(&self) -> u32 {
        self.bits.capacity()
    }

    /// Is the instance valid at `t`?
    #[inline]
    pub fn is_valid_at(&self, t: Moment) -> bool {
        self.bits.contains(t)
    }

    /// Marks the instance valid at `t`.
    #[inline]
    pub fn add(&mut self, t: Moment) {
        self.bits.insert(t);
    }

    /// Marks the instance invalid at `t`.
    #[inline]
    pub fn drop(&mut self, t: Moment) {
        self.bits.remove(t);
    }

    /// Number of valid moments.
    pub fn len(&self) -> u32 {
        self.bits.count()
    }

    /// `true` if valid nowhere.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Earliest valid moment.
    pub fn first(&self) -> Option<Moment> {
        self.bits.min()
    }

    /// Latest valid moment.
    pub fn last(&self) -> Option<Moment> {
        self.bits.max()
    }

    /// Ascending iterator over valid moments.
    pub fn iter(&self) -> impl Iterator<Item = Moment> + '_ {
        self.bits.iter()
    }

    /// Do two validity sets share a moment? Used both for the disjointness
    /// invariant and for perspective predicates like
    /// `σ_{Product.VS ∩ {Feb, Apr} ≠ ∅}` (Section 4.1).
    pub fn intersects(&self, other: &ValiditySet) -> bool {
        self.bits.intersects(&other.bits)
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &ValiditySet) {
        self.bits.union_with(&other.bits);
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &ValiditySet) {
        self.bits.intersect_with(&other.bits);
    }

    /// In-place difference.
    pub fn difference_with(&mut self, other: &ValiditySet) {
        self.bits.difference_with(&other.bits);
    }

    /// `true` if every moment of `self` is in `other`.
    pub fn is_subset(&self, other: &ValiditySet) -> bool {
        self.bits.is_subset(&other.bits)
    }

    /// Direct access to the underlying bit set (for bulk operators like Φ).
    pub fn bits(&self) -> &BitSet {
        &self.bits
    }

    /// Wraps a raw bit set as a validity set.
    pub fn from_bits(bits: BitSet) -> Self {
        ValiditySet { bits }
    }

    /// Renders as `{Jan, Feb, ...}` given moment names, for diagnostics.
    pub fn display_with<'a>(&'a self, names: &'a [String]) -> impl std::fmt::Display + 'a {
        struct D<'a>(&'a ValiditySet, &'a [String]);
        impl std::fmt::Display for D<'_> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{{")?;
                for (i, t) in self.0.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    match self.1.get(t as usize) {
                        Some(n) => write!(f, "{n}")?,
                        None => write!(f, "#{t}")?,
                    }
                }
                write!(f, "}}")
            }
        }
        D(self, names)
    }
}

impl std::fmt::Debug for ValiditySet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "VS{:?}", self.bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_is_half_open() {
        let v = ValiditySet::interval(12, 2, 5);
        assert!(!v.is_valid_at(1));
        assert!(v.is_valid_at(2));
        assert!(v.is_valid_at(4));
        assert!(!v.is_valid_at(5));
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn from_onward_reaches_end() {
        let v = ValiditySet::from_onward(12, 10);
        assert_eq!(v.iter().collect::<Vec<_>>(), vec![10, 11]);
    }

    #[test]
    fn interval_clamps_to_capacity() {
        let v = ValiditySet::interval(6, 4, 100);
        assert_eq!(v.iter().collect::<Vec<_>>(), vec![4, 5]);
    }

    #[test]
    fn disjointness_detection() {
        // The paper's example: VS(d1) = {Jan, Feb, Jun}, VS(d2) = {Mar, Apr, May}
        // (interleaved but disjoint).
        let d1 = ValiditySet::of(12, [0, 1, 5]);
        let d2 = ValiditySet::of(12, [2, 3, 4]);
        assert!(!d1.intersects(&d2));
        let d3 = ValiditySet::of(12, [5, 6]);
        assert!(d1.intersects(&d3));
    }

    #[test]
    fn first_and_last() {
        let v = ValiditySet::of(12, [3, 7, 9]);
        assert_eq!(v.first(), Some(3));
        assert_eq!(v.last(), Some(9));
    }

    #[test]
    fn display_with_names() {
        let names: Vec<String> = ["Jan", "Feb", "Mar"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let v = ValiditySet::of(3, [0, 2]);
        assert_eq!(format!("{}", v.display_with(&names)), "{Jan, Mar}");
    }
}
