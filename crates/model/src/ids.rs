//! Strongly-typed identifiers used throughout the model.
//!
//! All identifiers are arena indices: a [`MemberId`] indexes into its
//! dimension's member arena, an [`InstanceId`] into the varying-dimension
//! instance arena, and so on. They are deliberately `Copy` and cheap so that
//! hot loops (chunk iteration, aggregation) can pass them by value.

use std::fmt;

/// Identifies a dimension within a [`crate::Schema`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DimensionId(pub u32);

/// Identifies a member within a single [`crate::Dimension`]'s arena.
///
/// `MemberId(0)` is always the dimension's root member.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MemberId(pub u32);

/// Identifies a member *instance* of a varying dimension.
///
/// An instance is one distinct root-to-leaf classification of a leaf member
/// (e.g. `FTE/Joe` vs `Contractor/Joe`), per Definition 3.1 of the paper.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstanceId(pub u32);

/// A position along a cube axis.
///
/// For an ordinary dimension this indexes the dimension's leaf members in
/// declaration order; for a varying dimension it indexes member instances.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AxisSlot(pub u32);

/// A leaf-level member of a parameter dimension, identified by its ordinal.
///
/// The paper calls these *moments* ("we refer to leaf level members of
/// ordered parameter dimensions as 'moments' as though they were from the
/// Time dimension"). For ordered parameter dimensions the ordinal *is* the
/// temporal order; for unordered ones it is just an index.
pub type Moment = u32;

impl MemberId {
    /// The root member every dimension is created with.
    pub const ROOT: MemberId = MemberId(0);

    /// Arena index as `usize`, for direct vector indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl DimensionId {
    /// Arena index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl InstanceId {
    /// Arena index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl AxisSlot {
    /// Axis position as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for DimensionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Dim({})", self.0)
    }
}

impl fmt::Debug for MemberId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Mem({})", self.0)
    }
}

impl fmt::Debug for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Inst({})", self.0)
    }
}

impl fmt::Debug for AxisSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Slot({})", self.0)
    }
}

impl fmt::Display for DimensionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for MemberId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_is_zero() {
        assert_eq!(MemberId::ROOT, MemberId(0));
        assert_eq!(MemberId::ROOT.index(), 0);
    }

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", DimensionId(3)), "Dim(3)");
        assert_eq!(format!("{:?}", MemberId(7)), "Mem(7)");
        assert_eq!(format!("{:?}", InstanceId(1)), "Inst(1)");
        assert_eq!(format!("{:?}", AxisSlot(9)), "Slot(9)");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(MemberId(1) < MemberId(2));
        assert!(AxisSlot(0) < AxisSlot(10));
    }
}
