//! The schema: a set of dimensions plus the varying-dimension registry,
//! and the mapping from dimensions to cube axes.

use crate::dimension::Dimension;
use crate::error::ModelError;
use crate::ids::{AxisSlot, DimensionId, InstanceId, MemberId, Moment};
use crate::varying::VaryingDimension;
use crate::Result;
use std::collections::HashMap;

/// A multidimensional schema.
///
/// Axes: every dimension contributes one cube axis. For an ordinary
/// dimension the axis slots are its leaf members (in leaf-ordinal order);
/// for a varying dimension the slots are its member *instances*. The cube
/// stores leaf cells over the cross product of all axes.
///
/// Construction protocol: build hierarchies → [`Schema::make_varying`] →
/// apply structural changes → [`Schema::seal`] → load data. `seal` is
/// idempotent and re-callable after further edits (but a cube built against
/// an earlier seal is invalidated by axis changes — operators that change
/// structure, like split, clone the schema instead of mutating it).
#[derive(Debug, Clone)]
pub struct Schema {
    dims: Vec<Dimension>,
    by_name: HashMap<String, DimensionId>,
    varying: Vec<VaryingDimension>,
    varying_of: HashMap<DimensionId, usize>,
}

impl Schema {
    /// An empty schema.
    pub fn new() -> Self {
        Schema {
            dims: Vec::new(),
            by_name: HashMap::new(),
            varying: Vec::new(),
            varying_of: HashMap::new(),
        }
    }

    /// Adds a dimension (with its implicit root member named after it).
    pub fn add_dimension(&mut self, name: &str) -> DimensionId {
        let id = DimensionId(self.dims.len() as u32);
        self.dims.push(Dimension::new(name));
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Number of dimensions.
    pub fn dim_count(&self) -> usize {
        self.dims.len()
    }

    /// All dimension ids, in declaration order.
    pub fn dim_ids(&self) -> impl Iterator<Item = DimensionId> {
        (0..self.dims.len() as u32).map(DimensionId)
    }

    /// Borrow a dimension.
    pub fn dim(&self, id: DimensionId) -> &Dimension {
        &self.dims[id.index()]
    }

    /// Mutably borrow a dimension.
    pub fn dim_mut(&mut self, id: DimensionId) -> &mut Dimension {
        &mut self.dims[id.index()]
    }

    /// Checked dimension lookup.
    pub fn try_dim(&self, id: DimensionId) -> Result<&Dimension> {
        self.dims
            .get(id.index())
            .ok_or(ModelError::UnknownDimension(id))
    }

    /// Finds a dimension by name.
    pub fn find_dimension(&self, name: &str) -> Option<DimensionId> {
        self.by_name.get(name).copied()
    }

    /// Finds a dimension by name, erroring when absent.
    pub fn resolve_dimension(&self, name: &str) -> Result<DimensionId> {
        self.find_dimension(name)
            .ok_or_else(|| ModelError::UnknownDimensionName(name.to_string()))
    }

    /// Registers `varying` as a varying dimension driven by `parameter`
    /// (Definition 2.1). The parameter dimension's leaves must already be
    /// declared — their count sizes every validity set.
    pub fn make_varying(&mut self, varying: DimensionId, parameter: DimensionId) -> Result<()> {
        self.try_dim(varying)?;
        self.try_dim(parameter)?;
        if self.varying_of.contains_key(&varying) {
            return Err(ModelError::AlreadyVarying(
                self.dim(varying).name().to_string(),
            ));
        }
        self.dims[parameter.index()].seal();
        let moments = self.dims[parameter.index()].leaf_count();
        if moments == 0 {
            return Err(ModelError::EmptyParameterDimension(
                self.dim(parameter).name().to_string(),
            ));
        }
        self.varying_of.insert(varying, self.varying.len());
        self.varying
            .push(VaryingDimension::new(varying, parameter, moments));
        Ok(())
    }

    /// The varying-dimension metadata for `dim`, if registered.
    pub fn varying(&self, dim: DimensionId) -> Option<&VaryingDimension> {
        self.varying_of.get(&dim).map(|&i| &self.varying[i])
    }

    /// Mutable access to varying metadata.
    pub fn varying_mut(&mut self, dim: DimensionId) -> Option<&mut VaryingDimension> {
        match self.varying_of.get(&dim) {
            Some(&i) => Some(&mut self.varying[i]),
            None => None,
        }
    }

    /// Checked varying lookup.
    pub fn try_varying(&self, dim: DimensionId) -> Result<&VaryingDimension> {
        self.varying(dim)
            .ok_or_else(|| ModelError::NotVarying(self.dim(dim).name().to_string()))
    }

    /// All registered varying dimensions.
    pub fn varying_dims(&self) -> &[VaryingDimension] {
        &self.varying
    }

    /// Is `dim` varying?
    pub fn is_varying(&self, dim: DimensionId) -> bool {
        self.varying_of.contains_key(&dim)
    }

    /// Applies a legal structural change (Definition 3.1) to a varying
    /// dimension: `member` reports to `new_parent` from moment `t` onward.
    pub fn reclassify(
        &mut self,
        dim: DimensionId,
        member: MemberId,
        new_parent: MemberId,
        t: Moment,
    ) -> Result<()> {
        let idx = *self
            .varying_of
            .get(&dim)
            .ok_or_else(|| ModelError::NotVarying(self.dim(dim).name().to_string()))?;
        let d = &self.dims[dim.index()];
        self.varying[idx].reclassify(d, member, new_parent, t)
    }

    /// Assigns a parent at explicit moments (unordered parameter form).
    pub fn set_parent_at(
        &mut self,
        dim: DimensionId,
        member: MemberId,
        parent: MemberId,
        at: impl IntoIterator<Item = Moment>,
    ) -> Result<()> {
        let idx = *self
            .varying_of
            .get(&dim)
            .ok_or_else(|| ModelError::NotVarying(self.dim(dim).name().to_string()))?;
        let d = &self.dims[dim.index()];
        self.varying[idx].set_parent_at(d, member, parent, at)
    }

    /// Declares a member meaningless at the given moments.
    pub fn clear_at(
        &mut self,
        dim: DimensionId,
        member: MemberId,
        at: impl IntoIterator<Item = Moment>,
    ) -> Result<()> {
        let idx = *self
            .varying_of
            .get(&dim)
            .ok_or_else(|| ModelError::NotVarying(self.dim(dim).name().to_string()))?;
        let d = &self.dims[dim.index()];
        self.varying[idx].clear_at(d, member, at)
    }

    /// Seals every dimension (computes leaf lists) and rebuilds every
    /// varying dimension's instance table. Must be called before axis
    /// queries or cube loading; idempotent.
    pub fn seal(&mut self) {
        for d in &mut self.dims {
            d.seal();
        }
        for i in 0..self.varying.len() {
            let dim_id = self.varying[i].varying_dim();
            // Split borrows: dims and varying are distinct fields.
            let d = &self.dims[dim_id.index()];
            self.varying[i].rebuild(d);
        }
    }

    /// Validates model invariants (instance disjointness for every varying
    /// dimension).
    pub fn validate(&self) -> Result<()> {
        for v in &self.varying {
            v.validate(self.dim(v.varying_dim()))?;
        }
        Ok(())
    }

    // ----- axis mapping ---------------------------------------------------

    /// Length of the cube axis contributed by `dim`: instance count for
    /// varying dimensions, leaf count otherwise.
    pub fn axis_len(&self, dim: DimensionId) -> u32 {
        match self.varying(dim) {
            Some(v) => v.instance_count(),
            None => self.dim(dim).leaf_count(),
        }
    }

    /// The leaf member behind an axis slot.
    pub fn slot_member(&self, dim: DimensionId, slot: AxisSlot) -> MemberId {
        match self.varying(dim) {
            Some(v) => v.instance(InstanceId(slot.0)).member,
            None => self.dim(dim).leaf_at(slot.0).expect("slot in range"),
        }
    }

    /// Ancestor chain of an axis slot, bottom-up, ending at the root.
    /// For varying dimensions this follows the *instance's* path, so
    /// `FTE/Joe` and `Contractor/Joe` roll up differently.
    pub fn slot_ancestors(&self, dim: DimensionId, slot: AxisSlot) -> Vec<MemberId> {
        match self.varying(dim) {
            Some(v) => {
                let inst = v.instance(InstanceId(slot.0));
                let mut out: Vec<MemberId> = inst.path.iter().rev().copied().collect();
                out.push(MemberId::ROOT);
                out
            }
            None => {
                let leaf = self.dim(dim).leaf_at(slot.0).expect("slot in range");
                self.dim(dim).ancestors(leaf)
            }
        }
    }

    /// All axis slots that roll up into `member` (inclusive when `member`
    /// is itself behind a slot). For varying dimensions a slot matches when
    /// the member is the instance's leaf **or** appears on its path.
    pub fn slots_under(&self, dim: DimensionId, member: MemberId) -> Vec<AxisSlot> {
        let n = self.axis_len(dim);
        if member == MemberId::ROOT {
            return (0..n).map(AxisSlot).collect();
        }
        match self.varying(dim) {
            Some(v) => {
                if self.dim(dim).is_leaf(member) {
                    // Fast path: a leaf member's slots are exactly its
                    // instances.
                    return v
                        .instances_of(member)
                        .iter()
                        .map(|i| AxisSlot(i.0))
                        .collect();
                }
                (0..n)
                    .map(AxisSlot)
                    .filter(|&s| {
                        let inst = v.instance(InstanceId(s.0));
                        inst.member == member || inst.path.contains(&member)
                    })
                    .collect()
            }
            None => {
                let d = self.dim(dim);
                if let Some(ord) = d.leaf_ordinal(member) {
                    return vec![AxisSlot(ord)];
                }
                (0..n)
                    .map(AxisSlot)
                    .filter(|&s| {
                        let leaf = d.leaf_at(s.0).expect("slot in range");
                        d.is_ancestor(member, leaf)
                    })
                    .collect()
            }
        }
    }

    /// Axis slots of a varying dimension, as instance ids.
    pub fn instance_of_slot(&self, dim: DimensionId, slot: AxisSlot) -> Option<InstanceId> {
        self.varying(dim).map(|_| InstanceId(slot.0))
    }

    /// Human-readable axis slot label (`"FTE/Joe"` or `"Jan"`).
    pub fn slot_label(&self, dim: DimensionId, slot: AxisSlot) -> String {
        match self.varying(dim) {
            Some(v) => v.instance_name(self.dim(dim), InstanceId(slot.0)),
            None => {
                let leaf = self.dim(dim).leaf_at(slot.0).expect("slot in range");
                self.dim(dim).member_name(leaf).to_string()
            }
        }
    }

    /// For a parameter dimension: the moment ordinal of a leaf member.
    pub fn moment_of(&self, dim: DimensionId, leaf: MemberId) -> Option<Moment> {
        self.dim(dim).leaf_ordinal(leaf)
    }

    /// Axis lengths of every dimension, in declaration order — the cube's
    /// logical shape.
    pub fn shape(&self) -> Vec<u32> {
        self.dim_ids().map(|d| self.axis_len(d)).collect()
    }
}

impl Default for Schema {
    fn default() -> Self {
        Schema::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> (Schema, DimensionId, DimensionId) {
        let mut s = Schema::new();
        let time = s.add_dimension("Time");
        for m in ["Jan", "Feb", "Mar", "Apr", "May", "Jun"] {
            s.dim_mut(time).add_child_of_root(m).unwrap();
        }
        s.dim_mut(time).set_ordered(true);
        let org = s.add_dimension("Organization");
        let fte = s.dim_mut(org).add_child_of_root("FTE").unwrap();
        let joe = s.dim_mut(org).add_member("Joe", fte).unwrap();
        s.dim_mut(org).add_member("Lisa", fte).unwrap();
        let pte = s.dim_mut(org).add_child_of_root("PTE").unwrap();
        s.dim_mut(org).add_member("Tom", pte).unwrap();
        s.make_varying(org, time).unwrap();
        s.reclassify(org, joe, pte, 2).unwrap();
        s.seal();
        (s, time, org)
    }

    #[test]
    fn axis_lengths() {
        let (s, time, org) = schema();
        assert_eq!(s.axis_len(time), 6);
        // Joe has 2 instances; Lisa and Tom 1 each.
        assert_eq!(s.axis_len(org), 4);
        assert_eq!(s.shape(), vec![6, 4]);
    }

    #[test]
    fn slot_labels_and_members() {
        let (s, _, org) = schema();
        let labels: Vec<String> = (0..s.axis_len(org))
            .map(|i| s.slot_label(org, AxisSlot(i)))
            .collect();
        assert_eq!(labels, vec!["FTE/Joe", "PTE/Joe", "FTE/Lisa", "PTE/Tom"]);
        let joe = s.dim(org).resolve("Joe").unwrap();
        assert_eq!(s.slot_member(org, AxisSlot(0)), joe);
        assert_eq!(s.slot_member(org, AxisSlot(1)), joe);
    }

    #[test]
    fn slots_under_rollup_member() {
        let (s, _, org) = schema();
        let fte = s.dim(org).resolve("FTE").unwrap();
        let pte = s.dim(org).resolve("PTE").unwrap();
        // FTE covers FTE/Joe and FTE/Lisa.
        assert_eq!(s.slots_under(org, fte), vec![AxisSlot(0), AxisSlot(2)]);
        // PTE covers PTE/Joe and PTE/Tom.
        assert_eq!(s.slots_under(org, pte), vec![AxisSlot(1), AxisSlot(3)]);
        // Root covers everything.
        assert_eq!(s.slots_under(org, MemberId::ROOT).len(), 4);
        // A leaf member covers all its instances.
        let joe = s.dim(org).resolve("Joe").unwrap();
        assert_eq!(s.slots_under(org, joe), vec![AxisSlot(0), AxisSlot(1)]);
    }

    #[test]
    fn slots_under_plain_dimension() {
        let (s, time, _) = schema();
        let jan = s.dim(time).resolve("Jan").unwrap();
        assert_eq!(s.slots_under(time, jan), vec![AxisSlot(0)]);
        assert_eq!(s.slots_under(time, MemberId::ROOT).len(), 6);
    }

    #[test]
    fn make_varying_requires_leaves() {
        let mut s = Schema::new();
        let a = s.add_dimension("A");
        let b = s.add_dimension("B");
        assert!(matches!(
            s.make_varying(a, b),
            Err(ModelError::EmptyParameterDimension(_))
        ));
    }

    #[test]
    fn double_varying_rejected() {
        let (mut s, time, org) = schema();
        assert!(matches!(
            s.make_varying(org, time),
            Err(ModelError::AlreadyVarying(_))
        ));
    }

    #[test]
    fn slot_ancestors_follow_instance_path() {
        let (s, _, org) = schema();
        let fte = s.dim(org).resolve("FTE").unwrap();
        let pte = s.dim(org).resolve("PTE").unwrap();
        assert_eq!(
            s.slot_ancestors(org, AxisSlot(0)),
            vec![fte, MemberId::ROOT]
        );
        assert_eq!(
            s.slot_ancestors(org, AxisSlot(1)),
            vec![pte, MemberId::ROOT]
        );
    }

    #[test]
    fn validate_passes_on_legal_changes() {
        let (s, _, _) = schema();
        s.validate().unwrap();
    }

    #[test]
    fn resolve_dimension_by_name() {
        let (s, time, org) = schema();
        assert_eq!(s.resolve_dimension("Time").unwrap(), time);
        assert_eq!(s.resolve_dimension("Organization").unwrap(), org);
        assert!(s.resolve_dimension("Nope").is_err());
    }
}
