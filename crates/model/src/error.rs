//! Error type for model construction and mutation.

use crate::ids::{DimensionId, MemberId, Moment};
use std::fmt;

/// Errors produced while building or mutating the multidimensional model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A dimension id did not resolve within the schema.
    UnknownDimension(DimensionId),
    /// A dimension name did not resolve within the schema.
    UnknownDimensionName(String),
    /// A member id did not resolve within its dimension.
    UnknownMember { dim: String, member: MemberId },
    /// A member name did not resolve within its dimension.
    UnknownMemberName { dim: String, member: String },
    /// A member with this name already exists under the same parent.
    DuplicateMember { dim: String, member: String },
    /// A dimension with this name already exists in the schema.
    DuplicateDimension(String),
    /// The target of a reclassification must be a non-leaf member
    /// (Definition 3.1 requires the new parent `f` to be non-leaf).
    ParentMustBeNonLeaf { dim: String, member: String },
    /// Attempted to attach a member to itself or one of its descendants.
    CyclicHierarchy { dim: String, member: String },
    /// The dimension is not registered as varying.
    NotVarying(String),
    /// The dimension is already registered as varying.
    AlreadyVarying(String),
    /// A moment is out of range for the parameter dimension.
    MomentOutOfRange { moment: Moment, len: u32 },
    /// A varying-dimension operation referenced a member that is not a leaf.
    NotALeaf { dim: String, member: String },
    /// Validity sets of two instances of the same member overlap — this
    /// violates the core invariant of Definition 3.1.
    OverlappingValidity { dim: String, member: String },
    /// The parameter dimension must be declared before its leaves are used
    /// as moments (we need a stable leaf count to size validity sets).
    EmptyParameterDimension(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::UnknownDimension(d) => write!(f, "unknown dimension {d:?}"),
            ModelError::UnknownDimensionName(n) => write!(f, "unknown dimension {n:?}"),
            ModelError::UnknownMember { dim, member } => {
                write!(f, "unknown member {member:?} in dimension {dim:?}")
            }
            ModelError::UnknownMemberName { dim, member } => {
                write!(f, "unknown member {member:?} in dimension {dim:?}")
            }
            ModelError::DuplicateMember { dim, member } => {
                write!(f, "member {member:?} already exists in dimension {dim:?}")
            }
            ModelError::DuplicateDimension(n) => {
                write!(f, "dimension {n:?} already exists")
            }
            ModelError::ParentMustBeNonLeaf { dim, member } => write!(
                f,
                "reclassification target {member:?} in {dim:?} must be a non-leaf member"
            ),
            ModelError::CyclicHierarchy { dim, member } => write!(
                f,
                "attaching {member:?} in {dim:?} would create a hierarchy cycle"
            ),
            ModelError::NotVarying(n) => write!(f, "dimension {n:?} is not varying"),
            ModelError::AlreadyVarying(n) => write!(f, "dimension {n:?} is already varying"),
            ModelError::MomentOutOfRange { moment, len } => write!(
                f,
                "moment {moment} out of range for parameter dimension with {len} leaves"
            ),
            ModelError::NotALeaf { dim, member } => {
                write!(f, "member {member:?} in {dim:?} is not a leaf")
            }
            ModelError::OverlappingValidity { dim, member } => write!(
                f,
                "instances of member {member:?} in {dim:?} have overlapping validity sets"
            ),
            ModelError::EmptyParameterDimension(n) => write!(
                f,
                "parameter dimension {n:?} has no leaf members; add moments before making \
                 another dimension vary over it"
            ),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_names() {
        let e = ModelError::UnknownMemberName {
            dim: "Org".into(),
            member: "Joe".into(),
        };
        let s = e.to_string();
        assert!(s.contains("Joe") && s.contains("Org"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error>(_: E) {}
        assert_err(ModelError::NotVarying("Time".into()));
    }
}
