//! # olap-workload
//!
//! Synthetic datasets for the reproduction:
//!
//! * [`mod@running_example`]: the paper's Fig. 1/2 warehouse (Organization /
//!   Location / Time / Measures, with Joe's reclassifications) — used by
//!   examples and the semantic golden tests;
//! * [`workforce`]: the Section 6 customer workload, parameterized — a
//!   7-dimension workforce-planning cube where N employees roll up into
//!   departments, ~1% change departments 1–11 times over 12 months, with
//!   the experiment queries of Fig. 10;
//! * [`retail`]: a product-catalog dataset (the Fig. 7 products) with
//!   margin rules, for positive-scenario and selection demos.

pub mod retail;
pub mod running_example;
pub mod type2;
pub mod workforce;

pub use retail::{retail_example, Retail};
pub use running_example::{running_example, RunningExample};
pub use type2::{simulate_forward, type2_of, Type2};
pub use workforce::{Workforce, WorkforceConfig, MONTHS};
