//! The Section 6 workload: a workforce-planning application.
//!
//! The paper's dataset: "a real customer workforce planning application
//! consisting of 7 dimensions. 20,250 employees are organized (roll up)
//! into 51 departments in one dimension; … we changed the reporting
//! structure of 250 employees such that they move frequently between
//! different departments in a 12 month period, between 1 and 11 times.
//! The independent Time dimension spans 12 months at the leaf level. …
//! 100 different measures (e.g., salary, grade etc) are input for each
//! employee over 12 months across 5 different business scenarios."
//!
//! This generator reproduces that *shape* at a configurable scale (the
//! default is 1/10th linear scale so everything runs on a laptop; see
//! DESIGN.md §2). The seven dimensions mirror the Hyperion Planning
//! application visible in the paper's Fig. 10 queries: **Department**
//! (employees under departments — the varying dimension), **Period**
//! (months), **Account** (measures), **Scenario** (incl. `Current`),
//! **Currency** (`Local`), **Version** (`BU Version_1`), and **HSP_Rates**
//! (`HSP_InputValue`).

use olap_cube::{Cube, CubeBuilder, RuleSet, StoreBackend};
use olap_model::{DimensionId, MemberId, Moment, Schema};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;

/// Month names used for Period leaves.
pub const MONTHS: [&str; 12] = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
];

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct WorkforceConfig {
    /// Total employees.
    pub employees: u32,
    /// Departments they roll up into.
    pub departments: u32,
    /// Employees whose reporting structure changes (the paper: 1%).
    pub changing: u32,
    /// How many of the changing employees get exactly 4 moves (the
    /// Fig. 13 experiment wants a pool of 4-move employees); the rest
    /// cycle through 1–11 moves.
    pub four_move_quota: u32,
    /// Months (paper: 12; must be ≤ 12 for named months).
    pub months: u32,
    /// Leaf accounts / measures (paper: 100).
    pub accounts: u32,
    /// Business scenarios (paper: 5).
    pub scenarios: u32,
    /// RNG seed — everything is deterministic given the config.
    pub seed: u64,
    /// Chunk extent along the employee axis.
    pub employee_extent: u32,
    /// Buffer-pool capacity in chunks (the paper configured Essbase with
    /// a 256 MB cache on a 20 GB cube — a small fraction).
    pub pool_capacity: usize,
    /// Storage backend for the cube.
    pub backend: StoreBackend,
}

impl Default for WorkforceConfig {
    /// 1/10th of the paper's scale: 2,025 employees / 51 departments /
    /// ~20 changers / 12 months / 10 accounts / 5 scenarios.
    fn default() -> Self {
        WorkforceConfig {
            employees: 2025,
            departments: 51,
            changing: 20,
            four_move_quota: 0,
            months: 12,
            accounts: 10,
            scenarios: 5,
            seed: 42,
            employee_extent: 16,
            pool_capacity: 1024,
            backend: StoreBackend::Memory,
        }
    }
}

impl WorkforceConfig {
    /// A miniature config for unit tests (fast to build).
    pub fn tiny() -> Self {
        WorkforceConfig {
            employees: 60,
            departments: 6,
            changing: 6,
            four_move_quota: 2,
            months: 12,
            accounts: 3,
            scenarios: 2,
            seed: 7,
            employee_extent: 8,
            pool_capacity: 1024,
            backend: StoreBackend::Memory,
        }
    }

    /// The paper's full scale (slow; ~12M input cells at 100 accounts).
    pub fn paper_scale() -> Self {
        WorkforceConfig {
            employees: 20_250,
            departments: 51,
            changing: 250,
            four_move_quota: 0,
            months: 12,
            accounts: 100,
            scenarios: 5,
            seed: 42,
            employee_extent: 32,
            pool_capacity: 4096,
            backend: StoreBackend::Memory,
        }
    }
}

/// The generated workload.
pub struct Workforce {
    /// The configuration it was built from.
    pub config: WorkforceConfig,
    /// The schema.
    pub schema: Arc<Schema>,
    /// The loaded cube.
    pub cube: Cube,
    /// Department (varying) dimension.
    pub department: DimensionId,
    /// Period (parameter) dimension.
    pub period: DimensionId,
    /// Account (measures) dimension.
    pub account: DimensionId,
    /// Scenario dimension.
    pub scenario: DimensionId,
    /// Currency dimension.
    pub currency: DimensionId,
    /// Version dimension.
    pub version: DimensionId,
    /// HSP_Rates dimension.
    pub hsp_rates: DimensionId,
    /// Changing employees with their move counts, in id order.
    pub movers: Vec<(MemberId, u32)>,
}

impl Workforce {
    /// Generates the workload.
    pub fn build(config: WorkforceConfig) -> Workforce {
        assert!(config.months >= 2 && config.months <= 12);
        assert!(config.departments >= 2);
        assert!(config.changing <= config.employees);
        let mut rng = StdRng::seed_from_u64(config.seed);

        let mut schema = Schema::new();
        // Period first so make_varying can size validity sets.
        let period = schema.add_dimension("Period");
        for m in MONTHS.iter().take(config.months as usize) {
            schema.dim_mut(period).add_child_of_root(m).expect("unique");
        }
        schema.dim_mut(period).set_ordered(true);

        let department = schema.add_dimension("Department");
        let mut dept_ids = Vec::with_capacity(config.departments as usize);
        for d in 0..config.departments {
            dept_ids.push(
                schema
                    .dim_mut(department)
                    .add_child_of_root(&format!("dept{d:03}"))
                    .expect("unique"),
            );
        }
        let mut employees = Vec::with_capacity(config.employees as usize);
        for e in 0..config.employees {
            let dept = dept_ids[(e % config.departments) as usize];
            employees.push(
                schema
                    .dim_mut(department)
                    .add_member(&format!("emp{e:05}"), dept)
                    .expect("unique"),
            );
        }

        let account = schema.add_dimension("Account");
        for a in 0..config.accounts {
            schema
                .dim_mut(account)
                .add_child_of_root(&format!("acc{a:03}"))
                .expect("unique");
        }
        schema.dim_mut(account).set_measure(true);

        let scenario = schema.add_dimension("Scenario");
        let scenario_names = ["Current", "Budget", "Forecast", "Plan", "Actual"];
        for s in 0..config.scenarios.max(1) {
            let name = scenario_names
                .get(s as usize)
                .map(|s| s.to_string())
                .unwrap_or_else(|| format!("Scenario{s}"));
            schema
                .dim_mut(scenario)
                .add_child_of_root(&name)
                .expect("unique");
        }

        let currency = schema.add_dimension("Currency");
        schema
            .dim_mut(currency)
            .add_child_of_root("Local")
            .expect("unique");
        schema
            .dim_mut(currency)
            .add_child_of_root("USD")
            .expect("unique");

        let version = schema.add_dimension("Version");
        schema
            .dim_mut(version)
            .add_child_of_root("BU Version_1")
            .expect("unique");
        schema
            .dim_mut(version)
            .add_child_of_root("Final")
            .expect("unique");

        let hsp_rates = schema.add_dimension("HSP_Rates");
        schema
            .dim_mut(hsp_rates)
            .add_child_of_root("HSP_InputValue")
            .expect("unique");
        schema
            .dim_mut(hsp_rates)
            .add_child_of_root("HSP_Rate")
            .expect("unique");

        schema.make_varying(department, period).expect("varying");

        // Reclassify the changing employees: changer i gets 4 moves while
        // the quota lasts, then cycles 1–11 (so every move count occurs).
        let mut movers: Vec<(MemberId, u32)> = Vec::with_capacity(config.changing as usize);
        for i in 0..config.changing {
            let emp = employees[i as usize];
            let n_moves = if i < config.four_move_quota {
                4
            } else {
                (i - config.four_move_quota) % 11 + 1
            };
            let n_moves = n_moves.min(config.months - 1);
            // Distinct move moments in 1..months.
            let mut moments: Vec<Moment> = (1..config.months).collect();
            for j in (1..moments.len()).rev() {
                let k = rng.random_range(0..=j);
                moments.swap(j, k);
            }
            moments.truncate(n_moves as usize);
            moments.sort_unstable();
            let mut current_dept = (i % config.departments) as usize;
            for &t in &moments {
                let mut next = rng.random_range(0..config.departments) as usize;
                if next == current_dept {
                    next = (next + 1) % config.departments as usize;
                }
                schema
                    .reclassify(department, emp, dept_ids[next], t)
                    .expect("legal change");
                current_dept = next;
            }
            movers.push((emp, n_moves));
        }
        schema.seal();
        schema.validate().expect("disjoint validity sets");
        let schema = Arc::new(schema);

        // Load data: every account × month × scenario for every valid
        // employee instance, at (Local, BU Version_1, HSP_InputValue).
        let mut rules = RuleSet::new();
        rules.set_measure_dim(account);
        let extents = vec![
            3,                       // Period
            config.employee_extent,  // Department (employee instances)
            config.accounts.max(1),  // Account
            config.scenarios.max(1), // Scenario
            1,                       // Currency
            1,                       // Version
            1,                       // HSP_Rates
        ];
        let mut b: CubeBuilder = Cube::builder(Arc::clone(&schema), extents)
            .expect("geometry")
            .backend(config.backend.clone())
            .pool_capacity(config.pool_capacity)
            .rules(rules);
        let varying = schema.varying(department).expect("varying");
        let n_inst = varying.instance_count();
        for inst_id in 0..n_inst {
            let inst = varying.instance(olap_model::InstanceId(inst_id));
            // Per-(instance, account) base value; months jitter around it.
            for a in 0..config.accounts {
                let base = rng.random_range(40.0..160.0_f64).round();
                for t in inst.validity.iter() {
                    for s in 0..config.scenarios.max(1) {
                        let v = base + (t as f64) + (s as f64) * 0.5;
                        b.set_num(&[t, inst_id, a, s, 0, 0, 0], v)
                            .expect("in range");
                    }
                }
            }
        }
        let cube = b.finish().expect("build cube");

        Workforce {
            config,
            schema,
            cube,
            department,
            period,
            account,
            scenario,
            currency,
            version,
            hsp_rates,
            movers,
        }
    }

    /// The employees with more than one instance, exactly as the
    /// experiments select them.
    pub fn changing_employees(&self) -> Vec<MemberId> {
        self.movers.iter().map(|&(m, _)| m).collect()
    }

    /// Changers with exactly `n` reporting-structure changes.
    pub fn movers_with_moves(&self, n: u32) -> Vec<MemberId> {
        self.movers
            .iter()
            .filter(|&&(_, c)| c == n)
            .map(|&(m, _)| m)
            .collect()
    }

    /// The named sets the Fig. 10 queries reference:
    /// `EmployeesWithAtleastOneMove-Set{1,2,3}` (a round-robin partition
    /// of the changers) and `EmployeeS3` (a two-instance employee — the
    /// Fig. 12 subject).
    pub fn named_sets(&self) -> Vec<(String, Vec<MemberId>)> {
        let mut sets: Vec<Vec<MemberId>> = vec![Vec::new(), Vec::new(), Vec::new()];
        for (i, &(m, _)) in self.movers.iter().enumerate() {
            sets[i % 3].push(m);
        }
        let mut out: Vec<(String, Vec<MemberId>)> = sets
            .into_iter()
            .enumerate()
            .map(|(i, s)| (format!("EmployeesWithAtleastOneMove-Set{}", i + 1), s))
            .collect();
        let s3 = self
            .movers_with_moves(1)
            .first()
            .copied()
            .or_else(|| self.movers.first().map(|&(m, _)| m));
        if let Some(m) = s3 {
            out.push(("EmployeeS3".to_string(), vec![m]));
        }
        out
    }

    /// Fig. 10(a): static perspectives over all changing employees.
    pub fn fig10a_query(&self, perspectives: &[&str]) -> String {
        self.fig10a_query_sem(perspectives, "STATIC")
    }

    /// Fig. 10(a)'s shape with any semantics keyword (`"STATIC"`,
    /// `"DYNAMIC FORWARD"`, …) — the Fig. 11 experiment sweeps these.
    pub fn fig10a_query_sem(&self, perspectives: &[&str], semantics: &str) -> String {
        format!(
            "WITH PERSPECTIVE {{{}}} FOR Department {semantics} \
             SELECT {{CrossJoin({{[Account].Levels(0).Members}}, \
             {{([Current], [Local], [BU Version_1], [HSP_InputValue])}})}} ON COLUMNS, \
             {{CrossJoin({{Union({{Union({{[EmployeesWithAtleastOneMove-Set1].Children}}, \
             {{[EmployeesWithAtleastOneMove-Set2].Children}})}}, \
             {{[EmployeesWithAtleastOneMove-Set3].Children}})}}, \
             {{Descendants([Period], 1, SELF_AND_AFTER)}})}} \
             DIMENSION PROPERTIES [Department] ON ROWS \
             FROM [App].[Db]",
            fmt_perspectives(perspectives),
        )
    }

    /// Fig. 10(b): dynamic forward over the two-instance `EmployeeS3`.
    pub fn fig10b_query(&self, perspectives: &[&str]) -> String {
        format!(
            "WITH PERSPECTIVE {{{}}} FOR Department DYNAMIC FORWARD \
             SELECT {{CrossJoin({{[Account].Levels(0).Members}}, \
             {{([Current], [Local], [BU Version_1], [HSP_InputValue])}})}} ON COLUMNS, \
             {{CrossJoin({{[EmployeeS3].Children}}, \
             {{Descendants([Period], 1, SELF_AND_AFTER)}})}} \
             DIMENSION PROPERTIES [Department] ON ROWS \
             FROM [App].[Db]",
            fmt_perspectives(perspectives),
        )
    }

    /// Fig. 10(c): dynamic forward over the first `head` changing
    /// employees.
    pub fn fig10c_query(&self, perspectives: &[&str], head: u32) -> String {
        format!(
            "WITH PERSPECTIVE {{{}}} FOR Department DYNAMIC FORWARD \
             SELECT {{CrossJoin({{[Account].Levels(0).Members}}, \
             {{([Current], [Local], [BU Version_1], [HSP_InputValue])}})}} ON COLUMNS, \
             {{CrossJoin({{Head({{[EmployeesWithAtleastOneMove-Set1].Children}}, {head})}}, \
             {{Descendants([Period], 1, SELF_AND_AFTER)}})}} \
             DIMENSION PROPERTIES [Department] ON ROWS \
             FROM [App].[Db]",
            fmt_perspectives(perspectives),
        )
    }

    /// Input cells before aggregation (the paper reports 121M).
    pub fn input_cells(&self) -> u64 {
        self.cube.present_cell_count().unwrap_or(0)
    }
}

fn fmt_perspectives(p: &[&str]) -> String {
    p.iter()
        .map(|m| format!("({m})"))
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_workload_shape() {
        let w = Workforce::build(WorkforceConfig::tiny());
        assert_eq!(w.schema.dim_count(), 7);
        assert_eq!(w.schema.axis_len(w.period), 12);
        // 60 employees, 6 changers — instance count exceeds employees.
        let n = w.schema.axis_len(w.department);
        assert!(n > 60, "expected extra instances, got {n}");
        assert_eq!(w.movers.len(), 6);
        // Quota guarantees at least 2 employees with exactly 4 moves (the
        // 1–11 cycle can add more).
        assert!(w.movers_with_moves(4).len() >= 2);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Workforce::build(WorkforceConfig::tiny());
        let b = Workforce::build(WorkforceConfig::tiny());
        assert_eq!(
            a.schema.axis_len(a.department),
            b.schema.axis_len(b.department)
        );
        assert_eq!(a.cube.total_sum().unwrap(), b.cube.total_sum().unwrap());
    }

    #[test]
    fn data_loaded_for_all_scenarios_and_accounts() {
        let w = Workforce::build(WorkforceConfig::tiny());
        let c = &w.config;
        // Instances' validity sets partition months per member, so cells =
        // employees × months × accounts × scenarios.
        let want =
            (c.employees as u64) * (c.months as u64) * (c.accounts as u64) * (c.scenarios as u64);
        assert_eq!(w.input_cells(), want);
    }

    #[test]
    fn named_sets_partition_changers() {
        let w = Workforce::build(WorkforceConfig::tiny());
        let sets = w.named_sets();
        assert_eq!(sets.len(), 4);
        let total: usize = sets[..3].iter().map(|(_, s)| s.len()).sum();
        assert_eq!(total, w.movers.len());
        assert_eq!(sets[3].0, "EmployeeS3");
        assert_eq!(sets[3].1.len(), 1);
    }

    #[test]
    fn move_counts_in_paper_range() {
        let w = Workforce::build(WorkforceConfig::tiny());
        for &(m, c) in &w.movers {
            assert!((1..=11).contains(&c), "{m:?} has {c} moves");
            let v = w.schema.varying(w.department).unwrap();
            // k moves ⇒ between 2 and k+1 instances (re-acquired parents
            // merge).
            let inst = v.instances_of(m).len() as u32;
            assert!(inst >= 2 && inst <= c + 1, "{c} moves but {inst} instances");
        }
    }

    #[test]
    fn queries_parse_shape() {
        // No MDX dependency here — just check the strings look sane.
        let w = Workforce::build(WorkforceConfig::tiny());
        let q = w.fig10a_query(&["Jan", "Jul"]);
        assert!(q.contains("WITH PERSPECTIVE {(Jan), (Jul)} FOR Department STATIC"));
        assert!(q.contains("DIMENSION PROPERTIES [Department] ON ROWS"));
        let q = w.fig10c_query(&["Jan", "Apr", "Jul", "Oct"], 50);
        assert!(q.contains("Head({[EmployeesWithAtleastOneMove-Set1].Children}, 50)"));
    }
}
