//! A retail dataset built around the paper's Fig. 7 product catalog.
//!
//! Products 1001, 1002, 2001, 3001 roll up into families 100, 200, 300;
//! product 1001 is reclassified during the year (the "varying Product
//! members" of Fig. 7/8). Markets NY/MA/CA carry Sales and COGS, with the
//! Section 2 rules: `Margin = Sales − COGS`, `For Market = East, Margin =
//! 0.93 × Sales − COGS`, and `Margin% = Margin / COGS × 100`.

use olap_cube::rules::{Expr, FormulaRule};
use olap_cube::{Cube, RuleSet};
use olap_model::{DimensionId, DimensionSpec, Schema, SchemaBuilder};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;

/// The built retail warehouse.
pub struct Retail {
    /// The cube (Product × Market × Time × Measures).
    pub cube: Cube,
    /// The schema.
    pub schema: Arc<Schema>,
    /// Product (varying over Time).
    pub product: DimensionId,
    /// Market.
    pub market: DimensionId,
    /// Time.
    pub time: DimensionId,
    /// Measures (Sales, COGS, Margin, MarginPct).
    pub measures: DimensionId,
}

/// Builds the retail example (12 months, seeded data).
pub fn retail_example(seed: u64) -> Retail {
    let schema = Arc::new(
        SchemaBuilder::new()
            .dimension(DimensionSpec::new("Product").tree(&[
                ("100", &["1001", "1002"][..]),
                ("200", &["2001"]),
                ("300", &["3001"]),
            ]))
            .dimension(
                DimensionSpec::new("Market")
                    .tree(&[("East", &["NY", "MA"][..]), ("West", &["CA"])]),
            )
            .dimension(DimensionSpec::new("Time").ordered().leaves(&[
                "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
            ]))
            .dimension(DimensionSpec::new("Measures").measures().leaves(&[
                "Sales",
                "COGS",
                "Margin",
                "MarginPct",
            ]))
            .varying("Product", "Time")
            // Fig. 7: product 1001 changes families during the year.
            .reclassify("Product", "1001", "200", "Apr")
            .reclassify("Product", "1001", "300", "Sep")
            .build()
            .expect("static schema"),
    );
    let product = schema.resolve_dimension("Product").expect("product");
    let market = schema.resolve_dimension("Market").expect("market");
    let time = schema.resolve_dimension("Time").expect("time");
    let measures = schema.resolve_dimension("Measures").expect("measures");
    let md = schema.dim(measures);
    let sales = md.resolve("Sales").expect("sales");
    let cogs = md.resolve("COGS").expect("cogs");
    let margin = md.resolve("Margin").expect("margin");
    let pct = md.resolve("MarginPct").expect("pct");
    let east = schema.dim(market).resolve("East").expect("east");

    let mut rules = RuleSet::new();
    rules.set_measure_dim(measures);
    rules.add_formula(FormulaRule {
        target: margin,
        scope: vec![],
        expr: Expr::measure(sales).sub(Expr::measure(cogs)),
    });
    rules.add_formula(FormulaRule {
        target: margin,
        scope: vec![(market, east)],
        expr: Expr::constant(0.93)
            .mul(Expr::measure(sales))
            .sub(Expr::measure(cogs)),
    });
    rules.add_formula(FormulaRule {
        target: pct,
        scope: vec![],
        expr: Expr::measure(margin)
            .div(Expr::measure(cogs))
            .mul(Expr::constant(100.0)),
    });

    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = Cube::builder(Arc::clone(&schema), vec![2, 2, 3, 2])
        .expect("geometry")
        .rules(rules);
    let sales_ord = md.leaf_ordinal(sales).expect("leaf");
    let cogs_ord = md.leaf_ordinal(cogs).expect("leaf");
    let varying = schema.varying(product).expect("varying");
    let n_markets = schema.axis_len(market);
    for (i, inst) in varying.instances().iter().enumerate() {
        for t in inst.validity.iter() {
            for mk in 0..n_markets {
                let s = rng.random_range(500.0..1500.0_f64).round();
                let c = (s * rng.random_range(0.4..0.8)).round();
                b.set_num(&[i as u32, mk, t, sales_ord], s)
                    .expect("in range");
                b.set_num(&[i as u32, mk, t, cogs_ord], c)
                    .expect("in range");
            }
        }
    }
    Retail {
        cube: b.finish().expect("build"),
        schema,
        product,
        market,
        time,
        measures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olap_cube::{CellEvaluator, Sel};

    #[test]
    fn product_1001_has_three_instances() {
        let r = retail_example(1);
        let v = r.schema.varying(r.product).unwrap();
        let p = r.schema.dim(r.product).resolve("1001").unwrap();
        let names: Vec<String> = v
            .instances_of(p)
            .iter()
            .map(|&i| v.instance_name(r.schema.dim(r.product), i))
            .collect();
        assert_eq!(names, vec!["100/1001", "200/1001", "300/1001"]);
    }

    #[test]
    fn margin_rules_fire() {
        let r = retail_example(2);
        let ev = CellEvaluator::new(&r.cube);
        let md = r.schema.dim(r.measures);
        let sel = |mname: &str, market: &str| {
            vec![
                Sel::Member(olap_model::MemberId::ROOT),
                Sel::Member(r.schema.dim(r.market).resolve(market).unwrap()),
                Sel::Member(r.schema.dim(r.time).resolve("Jan").unwrap()),
                Sel::Member(md.resolve(mname).unwrap()),
            ]
        };
        let s = ev.value(&sel("Sales", "CA")).unwrap().as_f64().unwrap();
        let c = ev.value(&sel("COGS", "CA")).unwrap().as_f64().unwrap();
        let m = ev.value(&sel("Margin", "CA")).unwrap().as_f64().unwrap();
        assert!((m - (s - c)).abs() < 1e-9);
        // East uses the scoped 0.93 rule.
        let s = ev.value(&sel("Sales", "East")).unwrap().as_f64().unwrap();
        let c = ev.value(&sel("COGS", "East")).unwrap().as_f64().unwrap();
        let m = ev.value(&sel("Margin", "East")).unwrap().as_f64().unwrap();
        assert!((m - (0.93 * s - c)).abs() < 1e-9);
    }

    #[test]
    fn sales_positive_everywhere_valid() {
        let r = retail_example(3);
        let total = r.cube.total_sum().unwrap();
        assert!(total > 0.0);
        // 5 instances (1001×3 + 1002 + 2001 + 3001 = 6) — validity
        // partitions 12 months; every (instance-month, market) has 2 cells.
        let v = r.schema.varying(r.product).unwrap();
        let months: u32 = v.instances().iter().map(|i| i.validity.len()).sum();
        assert_eq!(r.cube.present_cell_count().unwrap(), months as u64 * 3 * 2);
    }
}
