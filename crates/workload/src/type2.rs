//! A Type-2 slowly-changing-dimension baseline (paper Section 7).
//!
//! "Type-2 methodology tracks changes by introducing a new member in a
//! dimension with the same name as the member being changed but with a
//! different key and an optional effective date property. Thus history is
//! preserved and changes can be isolated using effective date. However,
//! the simulation of change via certain duplicate members is
//! fundamentally not known to an OLAP engine. Thus it is not possible to
//! issue hypothetical queries readily to such engines."
//!
//! [`type2_of`] converts any varying-dimension cube into its Type-2
//! twin: each member *instance* becomes a surrogate member (`Joe#1`,
//! `Joe#2`, …) under its instance parent, with the validity set kept in a
//! side table the engine knows nothing about. [`simulate_forward`] is
//! then what a Type-2 user must do for a what-if: re-implement the
//! forward semantics *client-side* over the side table, touching the cube
//! cell by cell — the baseline the paper's native perspectives replace.

use olap_cube::Cube;
use olap_model::{DimensionId, MemberId, Moment, Schema, ValiditySet};
use std::collections::HashMap;
use std::sync::Arc;

/// The Type-2 twin of a varying-dimension cube.
pub struct Type2 {
    /// Schema with surrogate members and *no* varying dimension.
    pub schema: Arc<Schema>,
    /// The re-homed cube.
    pub cube: Cube,
    /// The converted dimension.
    pub dim: DimensionId,
    /// The parameter dimension (still ordered Time, unchanged).
    pub param: DimensionId,
    /// Effective moments per surrogate — the side table an OLAP engine
    /// cannot see (generalizes Type-2 effective dates to interleaved
    /// validity).
    pub effective: HashMap<MemberId, ValiditySet>,
    /// Surrogate → natural key ("Joe#2" → "Joe").
    pub natural_key: HashMap<MemberId, String>,
    /// Natural key → surrogates in instance order.
    pub surrogates: HashMap<String, Vec<MemberId>>,
}

/// Converts a cube whose `dim` varies over an ordered parameter into its
/// Type-2 representation.
pub fn type2_of(cube: &Cube, dim: DimensionId) -> Type2 {
    let src_schema = cube.schema();
    let varying = src_schema.varying(dim).expect("dim must be varying");
    let param = varying.parameter_dim();
    let src_dim = src_schema.dim(dim);

    // Rebuild the schema: identical dimensions, but `dim` gets one
    // surrogate member per instance and no varying registration.
    let mut schema = Schema::new();
    let mut dim_map: HashMap<DimensionId, DimensionId> = HashMap::new();
    for d in src_schema.dim_ids() {
        let nd = schema.add_dimension(src_schema.dim(d).name());
        dim_map.insert(d, nd);
        if d == dim {
            // Non-leaf structure first (groups), then surrogates.
            for m in src_schema.dim(d).member_ids() {
                if m == MemberId::ROOT || src_schema.dim(d).is_leaf(m) {
                    continue;
                }
                let parent = src_schema.dim(d).parent(m).expect("non-root");
                let parent_name = if parent == MemberId::ROOT {
                    None
                } else {
                    Some(src_schema.dim(d).member_name(parent).to_string())
                };
                let target = &mut *schema.dim_mut(nd);
                let p = match parent_name {
                    None => MemberId::ROOT,
                    Some(n) => target.find(&n).expect("parents added in order"),
                };
                target
                    .add_member(src_schema.dim(d).member_name(m), p)
                    .expect("unique sibling names");
            }
        } else {
            // Clone the hierarchy verbatim (preorder keeps parents first).
            clone_dim(src_schema.dim(d), schema.dim_mut(nd));
        }
        schema
            .dim_mut(nd)
            .set_ordered(src_schema.dim(d).is_ordered());
        schema
            .dim_mut(nd)
            .set_measure(src_schema.dim(d).is_measure());
    }
    // Surrogates, one per instance, numbered in instance order.
    let ndim = dim_map[&dim];
    let mut effective = HashMap::new();
    let mut natural_key = HashMap::new();
    let mut surrogates: HashMap<String, Vec<MemberId>> = HashMap::new();
    let mut per_member_counter: HashMap<MemberId, u32> = HashMap::new();
    let mut surrogate_of_instance: Vec<MemberId> = Vec::new();
    for inst in varying.instances() {
        let counter = per_member_counter.entry(inst.member).or_insert(0);
        *counter += 1;
        let natural = src_dim.member_name(inst.member).to_string();
        let surrogate_name = format!("{natural}#{counter}");
        let parent_name = src_dim.member_name(inst.parent()).to_string();
        let parent = schema.dim(ndim).find(&parent_name).expect("groups cloned");
        let sid = schema
            .dim_mut(ndim)
            .add_member(&surrogate_name, parent)
            .expect("surrogate names unique");
        effective.insert(sid, inst.validity.clone());
        natural_key.insert(sid, natural.clone());
        surrogates.entry(natural).or_default().push(sid);
        surrogate_of_instance.push(sid);
    }
    schema.seal();
    let schema = Arc::new(schema);

    // Re-home the data: instance slot → surrogate slot.
    let mut b =
        Cube::builder(Arc::clone(&schema), cube.geometry().extents().to_vec()).expect("same rank");
    let vd = dim.index();
    let slot_of_surrogate: HashMap<u32, u32> = surrogate_of_instance
        .iter()
        .enumerate()
        .map(|(i, &sid)| {
            (
                i as u32,
                schema
                    .dim(ndim)
                    .leaf_ordinal(sid)
                    .expect("surrogates are leaves"),
            )
        })
        .collect();
    cube.for_each_present(|cell, v| {
        let mut c = cell.to_vec();
        c[vd] = slot_of_surrogate[&c[vd]];
        b.set_num(&c, v).expect("in range");
    })
    .expect("iterate");
    Type2 {
        cube: b.finish().expect("build"),
        schema,
        dim: ndim,
        param: dim_map[&param],
        effective,
        natural_key,
        surrogates,
    }
}

fn clone_dim(src: &olap_model::Dimension, dst: &mut olap_model::Dimension) {
    // Preorder walk keeps parents before children; map by name path.
    let mut stack: Vec<(MemberId, MemberId)> = src
        .children(MemberId::ROOT)
        .iter()
        .rev()
        .map(|&c| (c, MemberId::ROOT))
        .collect();
    while let Some((m, parent)) = stack.pop() {
        let nm = dst
            .add_member(src.member_name(m), parent)
            .expect("same names are unique in source");
        for &c in src.children(m).iter().rev() {
            stack.push((c, nm));
        }
    }
    dst.seal();
}

/// The client-side simulation a Type-2 user needs for a forward what-if:
/// re-derive each natural member's "owner" surrogate per moment from the
/// side table, then read and re-map the cube cell by cell. Returns
/// per-(surrogate-parent-name) totals — the "impact on salary allocation"
/// a paper-style query reports — over the given measure-and-context
/// slicer (a fixed slot per non-dim, non-param dimension; `None` = sum
/// over that axis).
pub fn simulate_forward(
    t2: &Type2,
    perspectives: &[Moment],
    slicer: &[Option<u32>],
) -> HashMap<String, f64> {
    assert!(!perspectives.is_empty());
    let schema = &t2.schema;
    let d = schema.dim(t2.dim);
    let vd = t2.dim.index();
    let pd = t2.param.index();
    let moments = schema.dim(t2.param).leaf_count();
    // owner[natural][t] = surrogate whose data counts at t under forward
    // semantics (the client-side Φ).
    let mut owner: HashMap<&str, Vec<Option<MemberId>>> = HashMap::new();
    for (natural, sids) in &t2.surrogates {
        let mut row = vec![None; moments as usize];
        for t in 0..moments {
            // most recent perspective ≤ t; pre-Pmin keeps history.
            let pt = perspectives.iter().copied().filter(|&p| p <= t).max();
            match pt {
                Some(p) => {
                    // The surrogate valid at p owns [p, next perspective).
                    let owner_sid = sids
                        .iter()
                        .copied()
                        .find(|s| t2.effective[s].is_valid_at(p));
                    row[t as usize] = owner_sid;
                }
                None => {
                    // t < Pmin: original owner keeps it, if it survives.
                    let actual = sids
                        .iter()
                        .copied()
                        .find(|s| t2.effective[s].is_valid_at(t));
                    let survives = actual.is_some_and(|s| {
                        perspectives
                            .iter()
                            .any(|&p| t2.effective[&s].is_valid_at(p))
                    });
                    row[t as usize] = if survives { actual } else { None };
                }
            }
        }
        owner.insert(natural.as_str(), row);
    }
    // Scan the cube, re-mapping every cell to its owner's parent.
    let mut totals: HashMap<String, f64> = HashMap::new();
    t2.cube
        .for_each_present(|cell, v| {
            for (i, s) in slicer.iter().enumerate() {
                if let Some(slot) = s {
                    if i != vd && i != pd && cell[i] != *slot {
                        return;
                    }
                }
            }
            let surrogate = d.leaf_at(cell[vd]).expect("slot in range");
            let natural = &t2.natural_key[&surrogate];
            let t = cell[pd];
            // Only cells of the surrogate actually valid at t count (the
            // cube stores them that way already).
            if let Some(owner_sid) = owner[natural.as_str()][t as usize] {
                let parent = d.parent(owner_sid).expect("leaf");
                *totals
                    .entry(d.member_name(parent).to_string())
                    .or_insert(0.0) += v;
            }
        })
        .expect("iterate");
    totals
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::running_example;
    use olap_cube::{CellEvaluator, Sel};
    use whatif_core::{apply_default, Mode, Scenario, Semantics};

    #[test]
    fn surrogates_mirror_instances() {
        let ex = running_example();
        let t2 = type2_of(&ex.cube, ex.org);
        // Joe has three surrogates with the instance validity sets.
        let sids = &t2.surrogates["Joe"];
        assert_eq!(sids.len(), 3);
        assert_eq!(t2.effective[&sids[0]].iter().collect::<Vec<_>>(), vec![0]);
        assert_eq!(
            t2.effective[&sids[2]].iter().collect::<Vec<_>>(),
            vec![2, 3, 5]
        );
        assert_eq!(t2.schema.dim(t2.dim).member_name(sids[1]), "Joe#2");
        // Data re-homed exactly.
        assert_eq!(t2.cube.total_sum().unwrap(), ex.cube.total_sum().unwrap());
        assert_eq!(
            t2.cube.present_cell_count().unwrap(),
            ex.cube.present_cell_count().unwrap()
        );
    }

    #[test]
    fn plain_rollups_still_work_on_type2() {
        // "History is preserved" — ordinary queries are fine.
        let ex = running_example();
        let t2 = type2_of(&ex.cube, ex.org);
        let ev = CellEvaluator::new(&t2.cube);
        let fte = t2.schema.dim(t2.dim).resolve("FTE").unwrap();
        let ny = {
            let loc = t2.schema.resolve_dimension("Location").unwrap();
            Sel::Member(t2.schema.dim(loc).resolve("NY").unwrap())
        };
        let salary = {
            let m = t2.schema.resolve_dimension("Measures").unwrap();
            Sel::Member(t2.schema.dim(m).resolve("Salary").unwrap())
        };
        let v = ev
            .value(&[Sel::Member(fte), ny, Sel::Member(MemberId::ROOT), salary])
            .unwrap();
        // FTE NY salary over the year: Joe#1 (Jan) + Lisa (6 months).
        assert_eq!(v, olap_store::CellValue::Num(70.0));
    }

    #[test]
    fn client_side_simulation_matches_native_perspectives() {
        // The paper's point, quantified: the Type-2 user *can* compute a
        // forward what-if, but only by re-implementing Φ client-side. The
        // numbers must agree with the native perspective query.
        let ex = running_example();
        let t2 = type2_of(&ex.cube, ex.org);
        for p in [vec![0u32], vec![1, 3], vec![2]] {
            // Type-2 simulation: NY × Salary slice.
            let slicer = vec![None, Some(0u32), None, Some(0u32)];
            let simulated = simulate_forward(&t2, &p, &slicer);
            // Native: perspective cube + visual rollups per type.
            let scenario = Scenario::negative(ex.org, p.clone(), Semantics::Forward, Mode::Visual);
            let r = apply_default(&ex.cube, &scenario).unwrap();
            let ev = CellEvaluator::new(&r.cube);
            for group in ["FTE", "PTE", "Contractor"] {
                let g = ex.schema.dim(ex.org).resolve(group).unwrap();
                let native = ev
                    .value(&[
                        Sel::Member(g),
                        Sel::Slot(0), // NY
                        Sel::Member(MemberId::ROOT),
                        Sel::Slot(0), // Salary
                    ])
                    .unwrap()
                    .or_zero();
                let sim = simulated.get(group).copied().unwrap_or(0.0);
                assert!(
                    (native - sim).abs() < 1e-9,
                    "P={p:?} {group}: native {native} vs simulated {sim}"
                );
            }
        }
    }
}
