//! The paper's running example (Fig. 1 / Fig. 2).
//!
//! Dimensions: Organization (FTE / PTE / Contractor with employees),
//! Location (East / West / South with states), Time (two quarters of
//! three months), Measures (Compensation: Salary, Benefits;
//! Productivity: Products, Services).
//!
//! Organization varies over Time: Joe is FTE in Jan, PTE in Feb,
//! Contractor from Mar onward except May (vacation ⇒ every cell ⊥). The
//! supplied paper text garbles the numeric tables, so values follow the
//! prose (see DESIGN.md §8): every *active* employee instance earns
//! Salary 10 and Benefits 2 per month in NY, and produces Products 5 /
//! Services 3. Sue, Dave and the other listed-but-inactive members carry
//! no data ("a cube never stores data corresponding to non-active
//! members").

use olap_cube::{AggFn, Cube, RuleSet};
use olap_model::{DimensionId, DimensionSpec, Schema, SchemaBuilder};
use std::sync::Arc;

/// The built warehouse plus the ids examples and tests need.
pub struct RunningExample {
    /// The cube (Organization × Location × Time × Measures).
    pub cube: Cube,
    /// The schema (shared with the cube).
    pub schema: Arc<Schema>,
    /// Organization (the varying dimension).
    pub org: DimensionId,
    /// Location.
    pub location: DimensionId,
    /// Time (the parameter dimension).
    pub time: DimensionId,
    /// Measures.
    pub measures: DimensionId,
}

/// Builds the running example.
pub fn running_example() -> RunningExample {
    let schema = Arc::new(
        SchemaBuilder::new()
            .dimension(DimensionSpec::new("Organization").tree(&[
                ("FTE", &["Joe", "Lisa", "Sue"][..]),
                ("PTE", &["Tom", "Dave"]),
                ("Contractor", &["Jane"]),
            ]))
            .dimension(DimensionSpec::new("Location").tree(&[
                ("East", &["NY", "MA", "NH"][..]),
                ("West", &["CA", "OR", "WA"]),
                ("South", &["TX", "FL"]),
            ]))
            .dimension(DimensionSpec::new("Time").ordered().tree(&[
                ("Qtr1", &["Jan", "Feb", "Mar"][..]),
                ("Qtr2", &["Apr", "May", "Jun"]),
            ]))
            .dimension(DimensionSpec::new("Measures").measures().tree(&[
                ("Compensation", &["Salary", "Benefits"][..]),
                ("Productivity", &["Products", "Services"]),
            ]))
            .varying("Organization", "Time")
            .reclassify("Organization", "Joe", "PTE", "Feb")
            .reclassify("Organization", "Joe", "Contractor", "Mar")
            .clear_at("Organization", "Joe", &["May"])
            .build()
            .expect("running example schema is static"),
    );
    let org = schema.resolve_dimension("Organization").expect("org");
    let location = schema.resolve_dimension("Location").expect("location");
    let time = schema.resolve_dimension("Time").expect("time");
    let measures = schema.resolve_dimension("Measures").expect("measures");

    let mut rules = RuleSet::new();
    rules.set_measure_dim(measures);
    rules.set_default_agg(AggFn::Sum);

    let mut b = Cube::builder(Arc::clone(&schema), vec![2, 3, 3, 2])
        .expect("geometry")
        .rules(rules);

    let ny = schema.dim(location).resolve("NY").expect("NY");
    let ny_slot = schema.dim(location).leaf_ordinal(ny).expect("leaf");
    let m = |name: &str| {
        let id = schema.dim(measures).resolve(name).expect("measure");
        schema.dim(measures).leaf_ordinal(id).expect("leaf")
    };
    let (salary, benefits, products, services) =
        (m("Salary"), m("Benefits"), m("Products"), m("Services"));

    // Active employees: every instance of Joe, Lisa, Tom, Jane.
    let active = ["Joe", "Lisa", "Tom", "Jane"];
    let varying = schema.varying(org).expect("varying");
    for (i, inst) in varying.instances().iter().enumerate() {
        let name = schema.dim(org).member_name(inst.member);
        if !active.contains(&name) {
            continue;
        }
        for t in inst.validity.iter() {
            for (measure, value) in [
                (salary, 10.0),
                (benefits, 2.0),
                (products, 5.0),
                (services, 3.0),
            ] {
                b.set_num(&[i as u32, ny_slot, t, measure], value)
                    .expect("in range");
            }
        }
    }
    let cube = b.finish().expect("build");
    RunningExample {
        cube,
        schema,
        org,
        location,
        time,
        measures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olap_cube::{CellEvaluator, Sel};
    use olap_store::CellValue;

    #[test]
    fn shape_matches_fig1() {
        let ex = running_example();
        // Organization axis: Joe×3 + Lisa + Sue + Tom + Dave + Jane = 8.
        assert_eq!(ex.schema.axis_len(ex.org), 8);
        assert_eq!(ex.schema.axis_len(ex.time), 6);
        assert_eq!(ex.schema.axis_len(ex.location), 8);
        assert_eq!(ex.schema.axis_len(ex.measures), 4);
    }

    #[test]
    fn joe_instances_match_fig2() {
        let ex = running_example();
        let joe = ex.schema.dim(ex.org).resolve("Joe").unwrap();
        let v = ex.schema.varying(ex.org).unwrap();
        let names: Vec<String> = v
            .instances_of(joe)
            .iter()
            .map(|&i| v.instance_name(ex.schema.dim(ex.org), i))
            .collect();
        assert_eq!(names, vec!["FTE/Joe", "PTE/Joe", "Contractor/Joe"]);
    }

    #[test]
    fn meaningless_cells_are_bottom() {
        // (FTE/Joe, Feb) is meaningless.
        let ex = running_example();
        let v = ex.schema.varying(ex.org).unwrap();
        let joe = ex.schema.dim(ex.org).resolve("Joe").unwrap();
        let fte_joe = v.instances_of(joe)[0];
        assert_eq!(ex.cube.get(&[fte_joe.0, 0, 1, 0]).unwrap(), CellValue::Null);
        assert_eq!(
            ex.cube.get(&[fte_joe.0, 0, 0, 0]).unwrap(),
            CellValue::Num(10.0)
        );
    }

    #[test]
    fn quarter_rollups() {
        let ex = running_example();
        let ev = CellEvaluator::new(&ex.cube);
        let d =
            |dim: DimensionId, name: &str| Sel::Member(ex.schema.dim(dim).resolve(name).unwrap());
        // Joe's Salary over Qtr1 in NY across all instances: 30.
        let v = ev
            .value(&[
                d(ex.org, "Joe"),
                d(ex.location, "NY"),
                d(ex.time, "Qtr1"),
                d(ex.measures, "Salary"),
            ])
            .unwrap();
        assert_eq!(v, CellValue::Num(30.0));
        // Qtr2: May vacation ⇒ 20.
        let v = ev
            .value(&[
                d(ex.org, "Joe"),
                d(ex.location, "NY"),
                d(ex.time, "Qtr2"),
                d(ex.measures, "Salary"),
            ])
            .unwrap();
        assert_eq!(v, CellValue::Num(20.0));
        // Compensation (Salary + Benefits) for everyone in Jan: 4 × 12.
        let v = ev
            .value(&[
                Sel::Member(olap_model::MemberId::ROOT),
                d(ex.location, "East"),
                d(ex.time, "Jan"),
                d(ex.measures, "Compensation"),
            ])
            .unwrap();
        assert_eq!(v, CellValue::Num(48.0));
    }

    #[test]
    fn inactive_members_have_no_data() {
        let ex = running_example();
        let ev = CellEvaluator::new(&ex.cube);
        let sue = ex.schema.dim(ex.org).resolve("Sue").unwrap();
        let v = ev
            .value(&[
                Sel::Member(sue),
                Sel::Member(olap_model::MemberId::ROOT),
                Sel::Member(olap_model::MemberId::ROOT),
                Sel::Member(olap_model::MemberId::ROOT),
            ])
            .unwrap();
        assert_eq!(v, CellValue::Null);
    }
}
